#include "overlay/dht.h"

#include <algorithm>

#include "common/check.h"

namespace asyncrd::overlay {

namespace {

// x in (a, b] clockwise on the 2^32 circle; (a, a] is the full circle
// (single-node ring owns every key).
bool in_open_closed(key_t a, key_t x, key_t b) noexcept {
  const std::uint32_t dx = static_cast<std::uint32_t>(x - a);
  const std::uint32_t db = static_cast<std::uint32_t>(b - a);
  if (db == 0) return dx != 0 || x == b;  // full circle
  return dx != 0 && dx <= db;
}

// x in (a, b) clockwise.
bool in_open_open(key_t a, key_t x, key_t b) noexcept {
  const std::uint32_t dx = static_cast<std::uint32_t>(x - a);
  const std::uint32_t db = static_cast<std::uint32_t>(b - a);
  if (db == 0) return dx != 0;  // full circle, excluding a itself
  return dx != 0 && dx < db;
}

// --- protocol messages ------------------------------------------------------

struct tick_msg final : sim::message {
  std::string_view type_name() const noexcept override { return "dht_tick"; }
  std::size_t id_fields() const noexcept override { return 0; }
};

struct find_req final : sim::message {
  find_req(key_t k, node_id o, std::uint32_t r, std::size_t h,
           std::uint8_t p, std::uint8_t s)
      : key(k), origin(o), request(r), hops(h), purpose(p), slot(s) {}
  key_t key;
  node_id origin;
  std::uint32_t request;
  std::size_t hops;
  std::uint8_t purpose;  // 0 = user lookup, 1 = join, 2 = finger fix
  std::uint8_t slot;     // finger index for purpose 2

  std::string_view type_name() const noexcept override { return "dht_find"; }
  std::size_t id_fields() const noexcept override { return 2; }  // key+origin
  std::size_t int_fields() const noexcept override { return 2; }
  std::size_t flag_bits() const noexcept override { return 2; }
};

struct find_resp final : sim::message {
  find_resp(key_t k, node_id h, std::uint32_t r, std::size_t hp,
            std::uint8_t p, std::uint8_t s)
      : key(k), home(h), request(r), hops(hp), purpose(p), slot(s) {}
  key_t key;
  node_id home;
  std::uint32_t request;
  std::size_t hops;
  std::uint8_t purpose;
  std::uint8_t slot;

  std::string_view type_name() const noexcept override {
    return "dht_find_resp";
  }
  std::size_t id_fields() const noexcept override { return 2; }
  std::size_t int_fields() const noexcept override { return 2; }
  std::size_t flag_bits() const noexcept override { return 2; }
};

struct get_pred_req final : sim::message {
  std::string_view type_name() const noexcept override {
    return "dht_get_pred";
  }
  std::size_t id_fields() const noexcept override { return 0; }
};

struct get_pred_resp final : sim::message {
  explicit get_pred_resp(node_id p) : pred(p) {}
  node_id pred;
  std::string_view type_name() const noexcept override {
    return "dht_pred_resp";
  }
  std::size_t id_fields() const noexcept override { return 1; }
};

struct notify_msg final : sim::message {
  explicit notify_msg(node_id c) : candidate(c) {}
  node_id candidate;
  std::string_view type_name() const noexcept override {
    return "dht_notify";
  }
  std::size_t id_fields() const noexcept override { return 1; }
};

/// Event-driven healing hint: "node `candidate` may now sit between you and
/// your successor".  Sent to the displaced predecessor when a notify lands,
/// so a join heals both ring sides immediately instead of waiting for the
/// neighbors' periodic stabilization budget (which may be exhausted).
struct succ_hint_msg final : sim::message {
  explicit succ_hint_msg(node_id c) : candidate(c) {}
  node_id candidate;
  std::string_view type_name() const noexcept override {
    return "dht_succ_hint";
  }
  std::size_t id_fields() const noexcept override { return 1; }
};

}  // namespace

// --- construction -----------------------------------------------------------

dht_node::dht_node(node_id id, std::vector<node_id> census,
                   std::size_t maintenance_ticks)
    : id_(id),
      fingers_(finger_count, invalid_node),
      ticks_left_(maintenance_ticks) {
  ring_overlay ring(std::move(census));
  ASYNCRD_CHECK(ring.contains(id_));
  successor_ = ring.successor(id_);
  predecessor_ = ring.predecessor(id_);
  const finger_table ft = ring.fingers_of(id_);
  for (std::size_t k = 0; k < finger_count; ++k) fingers_[k] = ft.fingers[k];
}

dht_node::dht_node(node_id id, node_id bootstrap,
                   std::size_t maintenance_ticks)
    : id_(id),
      bootstrap_(bootstrap),
      fingers_(finger_count, invalid_node),
      ticks_left_(maintenance_ticks) {}

// --- helpers ----------------------------------------------------------------

bool dht_node::owns(key_t key) const {
  if (predecessor_ == invalid_node) return successor_ == id_;
  return in_open_closed(static_cast<key_t>(predecessor_), key,
                        static_cast<key_t>(id_));
}

node_id dht_node::closest_preceding(key_t key) const {
  for (std::size_t k = fingers_.size(); k-- > 0;) {
    const node_id f = fingers_[k];
    if (f == invalid_node || f == id_) continue;
    if (in_open_open(static_cast<key_t>(id_), static_cast<key_t>(f), key))
      return f;
  }
  return successor_;
}

void dht_node::route_find(sim::context& ctx, key_t key, node_id origin,
                          std::uint32_t request, std::size_t hops,
                          std::uint8_t purpose, std::uint8_t slot) {
  // Single-node ring or key in (id, successor]: the successor owns it.
  if (successor_ == id_ ||
      in_open_closed(static_cast<key_t>(id_), key,
                     static_cast<key_t>(successor_))) {
    const node_id home = successor_ == id_ ? id_ : successor_;
    if (origin == id_) {
      // Resolved locally: deliver to ourselves without a network hop.
      if (purpose == 0)
        results_.push_back({key, home, hops, ctx.now()});
      else if (purpose == 2 && slot < fingers_.size())
        fingers_[slot] = home;
      else if (purpose == 1)
        successor_ = home;  // degenerate self-join
      return;
    }
    ctx.send(origin,
             sim::make_message<find_resp>(key, home, request, hops, purpose,
                                          slot));
    return;
  }
  const node_id next = closest_preceding(key);
  if (next == id_ || next == invalid_node) {
    // No better finger: hand to the successor (always makes progress).
    ctx.send(successor_, sim::make_message<find_req>(key, origin, request,
                                                     hops + 1, purpose, slot));
    return;
  }
  ctx.send(next, sim::make_message<find_req>(key, origin, request, hops + 1,
                                             purpose, slot));
}

void dht_node::schedule_tick(sim::context& ctx) {
  if (ticks_left_ == 0) return;
  ctx.send(id_, sim::make_message<tick_msg>());
}

// --- process hooks ----------------------------------------------------------

void dht_node::on_wake(sim::context& ctx) {
  if (bootstrap_ != invalid_node && successor_ == invalid_node) {
    // Late join: locate our successor through the bootstrap contact.
    ctx.send(bootstrap_,
             sim::make_message<find_req>(static_cast<key_t>(id_), id_,
                                         next_request_++, 0, /*purpose=*/1,
                                         0));
    return;
  }
  schedule_tick(ctx);
}

void dht_node::start_lookup(sim::network& net, key_t key) {
  sim::context ctx(net, id_);
  if (!joined()) {
    queued_lookups_.push_back(key);
    return;
  }
  route_find(ctx, key, id_, next_request_++, 0, /*purpose=*/0, 0);
}

void dht_node::on_message(sim::context& ctx, node_id from,
                          const sim::message_ptr& m) {
  if (dynamic_cast<const tick_msg*>(m.get()) != nullptr) {
    if (ticks_left_ == 0) return;
    --ticks_left_;
    // Stabilize: ask our successor who it believes precedes it.
    if (successor_ != invalid_node && successor_ != id_)
      ctx.send(successor_, sim::make_message<get_pred_req>());
    // Fix one finger per tick via a routed self-lookup.
    if (joined()) {
      const std::uint8_t slot =
          static_cast<std::uint8_t>(next_finger_to_fix_);
      const key_t target = static_cast<key_t>(
          id_ + (static_cast<std::uint64_t>(1) << next_finger_to_fix_));
      next_finger_to_fix_ = next_finger_to_fix_ % (finger_count - 1) + 1;
      route_find(ctx, target, id_, next_request_++, 0, /*purpose=*/2, slot);
    }
    schedule_tick(ctx);
    return;
  }
  if (const auto* req = dynamic_cast<const find_req*>(m.get())) {
    route_find(ctx, req->key, req->origin, req->request, req->hops,
               req->purpose, req->slot);
    return;
  }
  if (const auto* resp = dynamic_cast<const find_resp*>(m.get())) {
    switch (resp->purpose) {
      case 0:
        results_.push_back({resp->key, resp->home, resp->hops, ctx.now()});
        break;
      case 1: {
        // Join completed: adopt the home as successor and start healing.
        successor_ = resp->home;
        fingers_[0] = resp->home;
        ctx.send(successor_, sim::make_message<notify_msg>(id_));
        schedule_tick(ctx);
        for (const key_t k : queued_lookups_)
          route_find(ctx, k, id_, next_request_++, 0, 0, 0);
        queued_lookups_.clear();
        break;
      }
      case 2:
        if (resp->slot < fingers_.size()) fingers_[resp->slot] = resp->home;
        break;
      default:
        break;
    }
    return;
  }
  if (dynamic_cast<const get_pred_req*>(m.get()) != nullptr) {
    ctx.send(from, sim::make_message<get_pred_resp>(predecessor_));
    return;
  }
  if (const auto* pr = dynamic_cast<const get_pred_resp*>(m.get())) {
    // Chord stabilize: if our successor's predecessor sits between us and
    // the successor, it is our new successor; then notify.
    if (pr->pred != invalid_node && successor_ != invalid_node &&
        in_open_open(static_cast<key_t>(id_), static_cast<key_t>(pr->pred),
                     static_cast<key_t>(successor_))) {
      successor_ = pr->pred;
      fingers_[0] = pr->pred;
    }
    if (successor_ != invalid_node && successor_ != id_)
      ctx.send(successor_, sim::make_message<notify_msg>(id_));
    return;
  }
  if (const auto* n = dynamic_cast<const notify_msg*>(m.get())) {
    if (predecessor_ == invalid_node ||
        in_open_open(static_cast<key_t>(predecessor_),
                     static_cast<key_t>(n->candidate),
                     static_cast<key_t>(id_))) {
      const node_id displaced = predecessor_;
      predecessor_ = n->candidate;
      // Heal the other side of the splice right away: the displaced
      // predecessor's successor pointer still skips over the candidate.
      if (displaced != invalid_node && displaced != n->candidate)
        ctx.send(displaced, sim::make_message<succ_hint_msg>(n->candidate));
    }
    return;
  }
  if (const auto* h = dynamic_cast<const succ_hint_msg*>(m.get())) {
    if (successor_ != invalid_node &&
        in_open_open(static_cast<key_t>(id_), static_cast<key_t>(h->candidate),
                     static_cast<key_t>(successor_))) {
      successor_ = h->candidate;
      fingers_[0] = h->candidate;
      ctx.send(successor_, sim::make_message<notify_msg>(id_));
    }
    return;
  }
  ASYNCRD_CHECK(false && "unknown DHT message");
}

std::unique_ptr<sim::network> make_dht_network(
    const std::vector<node_id>& census, sim::scheduler& sched,
    std::size_t maintenance_ticks) {
  auto net = std::make_unique<sim::network>(sched);
  for (const node_id v : census)
    net->add_node(v,
                  std::make_unique<dht_node>(v, census, maintenance_ticks));
  for (const node_id v : census) net->wake(v);
  return net;
}

}  // namespace asyncrd::overlay
