// A message-passing Chord-style DHT running on the asynchronous simulator —
// the paper's motivating application realized as an actual protocol on the
// same substrate as the discovery algorithms.
//
// Role in this repository: resource discovery solves the *bootstrap*
// problem ("peers across the Internet initially know only a small number
// of peers"); this module is the downstream system the paper's intro says
// peers build next.  A peer starts with either (a) the full id census from
// a discovery leader — its ring state is then computed locally — or (b) a
// single bootstrap contact (a node that joined late, §6-style), in which
// case it joins by routed lookup and the ring heals through Chord's
// stabilize/notify/fix-fingers protocol, all as simulator messages.
//
// The protocol is deliberately classic Chord (successor ownership of keys,
// closest-preceding-finger greedy routing, periodic stabilization) with
// one simplification: periodic timers are modeled as self-addressed tick
// messages with a finite budget, so a run quiesces once maintenance
// finishes — matching the simulator's run-to-quiescence execution model.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "overlay/ring.h"
#include "sim/network.h"

namespace asyncrd::overlay {

/// Outcome of one distributed lookup, recorded at the requesting node.
struct dht_lookup_result {
  key_t key = 0;
  node_id home = invalid_node;
  std::size_t hops = 0;  ///< routing messages traversed (excl. final reply)
  sim::sim_time completed_at = 0;
};

class dht_node final : public sim::process {
 public:
  /// Full-census construction (post-discovery): ring state is derived
  /// locally; no join traffic needed.
  dht_node(node_id id, std::vector<node_id> census,
           std::size_t maintenance_ticks = 0);

  /// Late-join construction: knows only `bootstrap`; on wake it locates
  /// its successor by routed lookup and heals the ring via
  /// `maintenance_ticks` rounds of stabilize + fix-fingers.
  dht_node(node_id id, node_id bootstrap, std::size_t maintenance_ticks);

  void on_wake(sim::context& ctx) override;
  void on_message(sim::context& ctx, node_id from,
                  const sim::message_ptr& m) override;

  /// Issues a distributed lookup; the result lands in lookups() once the
  /// network quiesces.
  void start_lookup(sim::network& net, key_t key);

  // --- inspection ---------------------------------------------------------
  node_id id() const noexcept { return id_; }
  node_id successor() const noexcept { return successor_; }
  node_id predecessor() const noexcept { return predecessor_; }
  const std::vector<node_id>& fingers() const noexcept { return fingers_; }
  bool joined() const noexcept { return successor_ != invalid_node; }
  const std::vector<dht_lookup_result>& lookups() const noexcept {
    return results_;
  }

  static constexpr std::size_t finger_count = 32;

 private:
  void route_find(sim::context& ctx, key_t key, node_id origin,
                  std::uint32_t request, std::size_t hops,
                  std::uint8_t purpose, std::uint8_t slot);
  node_id closest_preceding(key_t key) const;
  bool owns(key_t key) const;
  void schedule_tick(sim::context& ctx);
  static std::uint64_t clockwise(key_t a, key_t b) noexcept {
    return static_cast<std::uint32_t>(b - a);
  }

  node_id id_;
  node_id bootstrap_ = invalid_node;
  node_id successor_ = invalid_node;
  node_id predecessor_ = invalid_node;
  std::vector<node_id> fingers_;  // invalid_node when unknown
  std::size_t ticks_left_;
  std::size_t next_finger_to_fix_ = 1;
  std::uint32_t next_request_ = 1;
  std::vector<dht_lookup_result> results_;
  std::vector<key_t> queued_lookups_;  // issued before the node joined
};

/// Builds a DHT network: every census member as a dht_node (full-census
/// construction), woken and ready.  The returned network references
/// `sched`, which must outlive it.
std::unique_ptr<sim::network> make_dht_network(
    const std::vector<node_id>& census, sim::scheduler& sched,
    std::size_t maintenance_ticks = 0);

}  // namespace asyncrd::overlay
