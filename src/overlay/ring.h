// Chord-style ring overlay built from a resource-discovery census.
//
// The paper's introduction motivates resource discovery as the bootstrap
// step of exactly this: "Once all peers that are interested get to know of
// each other they may cooperate on joint tasks (for example ... may build
// an overlay network and form a distributed hash table [Chord, CAN,
// Viceroy, Tapestry])."  This module is that downstream consumer: given
// the id census a leader gathered, it arranges the peers on a circular
// 32-bit key space, equips each with a finger table, and routes lookups in
// O(log n) hops.
//
// The overlay is a *deterministic function of the census* — any two peers
// holding the same census compute identical routing state, so after the
// discovery phase no further coordination messages are needed to agree on
// the structure.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.h"

namespace asyncrd::overlay {

/// Key type: the same circular space as node ids (2^32).
using key_t = std::uint32_t;

/// One peer's routing state.
struct finger_table {
  node_id owner = invalid_node;
  node_id successor = invalid_node;
  node_id predecessor = invalid_node;
  /// fingers[k] = the peer responsible for owner + 2^k (mod 2^32).
  std::vector<node_id> fingers;
};

/// Result of a routed lookup.
struct lookup_result {
  node_id home = invalid_node;     ///< peer responsible for the key
  std::vector<node_id> path;       ///< peers visited, starting peer first
  std::size_t hops() const noexcept { return path.empty() ? 0 : path.size() - 1; }
};

class ring_overlay {
 public:
  ring_overlay() = default;

  /// Builds the ring from a census (e.g. leader->done() or a probe reply).
  /// Ids need not be sorted or unique; empty census yields an empty ring.
  explicit ring_overlay(std::vector<node_id> census);

  std::size_t size() const noexcept { return ring_.size(); }
  bool empty() const noexcept { return ring_.empty(); }
  const std::vector<node_id>& members() const noexcept { return ring_; }
  bool contains(node_id v) const;

  /// The peer responsible for `key`: the first member clockwise from key
  /// (Chord's successor function).
  node_id successor_of(key_t key) const;

  /// Immediate ring neighbors of a member.
  node_id successor(node_id member) const;
  node_id predecessor(node_id member) const;

  /// The full routing state of one member.
  finger_table fingers_of(node_id member) const;

  /// Greedy finger routing from `from` to the peer responsible for `key`;
  /// each hop moves to the closest preceding finger, exactly Chord's
  /// lookup.  Guaranteed to terminate in O(log n) expected hops.
  lookup_result lookup(node_id from, key_t key) const;

  /// Rebuilds after membership change (e.g. a fresh census after §6
  /// dynamic joins).  Equivalent to assigning a new ring_overlay.
  void rebuild(std::vector<node_id> census);

 private:
  std::size_t index_of(node_id member) const;  // throws if absent
  /// Clockwise distance from a to b on the 2^32 circle.
  static std::uint64_t clockwise(key_t a, key_t b) noexcept;

  std::vector<node_id> ring_;  // sorted ascending
};

}  // namespace asyncrd::overlay
