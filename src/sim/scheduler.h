// Delivery scheduling — where the asynchronous adversary lives.
//
// The paper's model: "messages sent will eventually arrive after a finite
// but unbounded time" with FIFO per ordered node pair.  The network enforces
// FIFO structurally (per-channel queues; a delivery event always releases
// the channel head), so a scheduler only chooses *when* the next delivery on
// a channel fires.  Adversaries additionally (a) hold whole senders until
// quiescence (Theorem 1's stalling adversary) and (b) inject wake-ups at
// quiescence points (Lemma 3.1's sequential wake-up).
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "common/rng.h"
#include "sim/message.h"

namespace asyncrd::sim {

class network;

/// Simulated time.  Unitless; only relative order matters.
using sim_time = std::uint64_t;

/// Wall-clock accounting of the event loop, accumulated across the
/// run_to_quiescence calls of one network.  This is the telemetry layer's
/// event-throughput source: unlike sim_time it measures host time, so it is
/// only meaningful for comparing implementations on one machine.
struct run_timing {
  std::uint64_t loops = 0;     ///< event-loop invocations timed
  std::uint64_t events = 0;    ///< events dispatched inside timed loops
  std::uint64_t wall_ns = 0;   ///< total host time spent dispatching

  double wall_ms() const noexcept {
    return static_cast<double>(wall_ns) / 1e6;
  }
  /// Events dispatched per wall-clock second (0 if nothing was timed).
  double events_per_sec() const noexcept;
};

/// Chooses per-message delivery delays and reacts to quiescence.
class scheduler {
 public:
  virtual ~scheduler() = default;

  /// Delay (>= 1) applied to the delivery event created for this send.
  virtual sim_time delay(node_id from, node_id to, const message& m) = 0;

  /// Called when the event queue drains.  May wake nodes or unblock held
  /// senders via the network reference.  Return true iff anything was
  /// injected (the run loop continues); false ends the run.
  virtual bool on_quiescence(network&) { return false; }

  /// Timing hook: called by the network after each event loop with the
  /// cumulative run_timing.  Default is a no-op; adaptive schedulers and
  /// telemetry collectors can override to observe throughput.
  virtual void on_run_timing(const run_timing&) {}
};

/// Every message takes exactly one time unit.  With the deterministic
/// seq-number tie-break this yields a canonical, repeatable execution.
class unit_delay_scheduler final : public scheduler {
 public:
  sim_time delay(node_id, node_id, const message&) override { return 1; }
};

/// Uniform random delays in [min_delay, max_delay] — the workhorse for
/// property sweeps: different seeds exercise different interleavings.
class random_delay_scheduler final : public scheduler {
 public:
  explicit random_delay_scheduler(std::uint64_t seed, sim_time min_delay = 1,
                                  sim_time max_delay = 64);
  sim_time delay(node_id, node_id, const message&) override;

 private:
  rng rng_;
  sim_time min_delay_;
  sim_time max_delay_;
};

/// Heavy-tailed delays (discrete Pareto-like: ~1/d^alpha tail, capped) —
/// closer to Internet latency than uniform jitter: most messages are fast,
/// a few straggle by orders of magnitude.  The model only requires finite
/// delays, so every correctness property must survive these schedules too.
class heavy_tail_delay_scheduler final : public scheduler {
 public:
  explicit heavy_tail_delay_scheduler(std::uint64_t seed,
                                      double tail_alpha = 1.3,
                                      sim_time cap = 100'000);
  sim_time delay(node_id, node_id, const message&) override;

 private:
  rng rng_;
  double tail_alpha_;
  sim_time cap_;
};

}  // namespace asyncrd::sim
