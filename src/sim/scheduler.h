// Delivery scheduling — where the asynchronous adversary lives.
//
// The paper's model: "messages sent will eventually arrive after a finite
// but unbounded time" with FIFO per ordered node pair.  The network enforces
// FIFO structurally (per-channel queues; a delivery event always releases
// the channel head), so a scheduler only chooses *when* the next delivery on
// a channel fires.  Adversaries additionally (a) hold whole senders until
// quiescence (Theorem 1's stalling adversary) and (b) inject wake-ups at
// quiescence points (Lemma 3.1's sequential wake-up).
#pragma once

#include <cassert>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/rng.h"
#include "sim/message.h"

namespace asyncrd::sim {

class network;

/// Simulated time.  Unitless; only relative order matters.
using sim_time = std::uint64_t;

/// Wall-clock accounting of the event loop, accumulated across the
/// run_to_quiescence calls of one network.  This is the telemetry layer's
/// event-throughput source: unlike sim_time it measures host time, so it is
/// only meaningful for comparing implementations on one machine.
struct run_timing {
  std::uint64_t loops = 0;     ///< event-loop invocations timed
  std::uint64_t events = 0;    ///< events dispatched inside timed loops
  std::uint64_t wall_ns = 0;   ///< total host time spent dispatching

  double wall_ms() const noexcept {
    return static_cast<double>(wall_ns) / 1e6;
  }
  /// Events dispatched per wall-clock second (0 if nothing was timed).
  double events_per_sec() const noexcept;
};

// --- calendar event queue -------------------------------------------------
//
// The event queue is the single hottest structure in the simulator: every
// send and every wake passes through it.  All five schedulers in the tree
// (unit, uniform-random, the three adversaries) draw *small* delays almost
// always — 1 for unit/adversarial schedules, <= 64 for the default random
// sweep — so a binary heap's O(log n) per operation buys generality nothing
// here.  calendar_queue dispenses events in O(1) amortized: a ring of
// per-tick buckets covers the near future [base, base + window), and the
// rare far-future event (the heavy-tail scheduler's Pareto stragglers) falls
// back to a binary heap that migrates into the ring as time advances.
//
// Ordering contract (what the determinism suite pins): pop() yields events
// in exactly the (at, seq) lexicographic order the old heap produced.
// Within a bucket all events share one timestamp, pushes append in seq
// order (seq is globally monotone), and heap->ring migration happens only
// when the window slides — before any new push can target the freed range —
// so appended order *is* seq order.
//
// Event must expose `.at` (sim_time) and `.seq` (uint64_t); After is the
// strict-weak ordering of a max-heap on (at, seq) reversed, i.e. the usual
// priority_queue comparator for a min-queue.
template <typename Event, typename After>
class calendar_queue {
 public:
  /// `window_log2`: ring covers 2^window_log2 ticks of near future.
  explicit calendar_queue(unsigned window_log2 = 12)
      : buckets_(std::size_t{1} << window_log2),
        mask_((std::size_t{1} << window_log2) - 1) {}

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  /// Events currently parked in the far-future heap (telemetry/tests).
  std::size_t overflowed() const noexcept { return overflow_.size(); }

  void push(Event ev) {
    // A past-time event is corruption, not a tolerable slip: `at & mask_`
    // would land it in a *future* ring bucket (the ring is modular), so it
    // would pop out of order up to a whole window late and silently break
    // the (at, seq) total order every replay guarantee rests on.  Cross-
    // thread injection (the parallel engine's barrier replay) is exactly
    // the caller class that could trigger it, so the check must survive
    // Release builds.
    ASYNCRD_CHECK(ev.at >= base_ && "calendar_queue: event scheduled in the past");
    ++size_;
    if (ev.at - base_ <= mask_) {
      bucket& b = buckets_[ev.at & mask_];
      b.events.push_back(ev);
      ++in_ring_;
    } else {
      overflow_.push(ev);
    }
  }

  /// Removes and returns the (at, seq)-least event.  Precondition: !empty().
  Event pop() {
    assert(size_ > 0);
    bucket& b = settle();
    const Event ev = b.events[b.head++];
    if (b.head == b.events.size()) {
      b.events.clear();
      b.head = 0;
    }
    --in_ring_;
    --size_;
    return ev;
  }

  /// Timestamp of the (at, seq)-least event without removing anything.
  /// Precondition: !empty().  Advances the window to the next occupied tick
  /// (the same lazy scan pop() does), so it is O(1) amortized.
  sim_time peek_time() {
    assert(size_ > 0);
    settle();
    return base_;
  }

  /// Removes *every* event sharing the earliest timestamp and appends them
  /// to `out` in (at, seq) order; returns that timestamp.  Precondition:
  /// !empty().  This is the parallel engine's window primitive: a bucket
  /// holds exactly one tick, every event it contains was pushed (or
  /// migrated) in seq order, and all delays are >= 1, so the drained batch
  /// is a closed causal frontier — nothing inside it can schedule work at
  /// its own timestamp.
  sim_time drain_next(std::vector<Event>& out) {
    assert(size_ > 0);
    bucket& b = settle();
    const sim_time at = base_;
    const std::size_t count = b.events.size() - b.head;
    out.insert(out.end(), b.events.begin() + static_cast<std::ptrdiff_t>(b.head),
               b.events.end());
    b.events.clear();
    b.head = 0;
    in_ring_ -= count;
    size_ -= count;
    return at;
  }

 private:
  struct bucket {
    std::vector<Event> events;
    std::size_t head = 0;  ///< first not-yet-popped element
  };

  /// Positions base_ on the earliest non-empty tick and returns its bucket.
  /// Precondition: size_ > 0.
  bucket& settle() {
    if (in_ring_ == 0) {
      // Ring drained: jump straight to the earliest far-future event.
      base_ = overflow_.top().at;
      migrate();
    }
    bucket* b = &buckets_[base_ & mask_];
    while (b->head >= b->events.size()) {
      b->events.clear();
      b->head = 0;
      ++base_;
      migrate();  // window slid: the freed tick may pull heap events in
      b = &buckets_[base_ & mask_];
    }
    return *b;
  }

  /// Moves every heap event that now fits the window into its bucket.
  /// Heap pops come out in (at, seq) order, so appends preserve seq order.
  void migrate() {
    while (!overflow_.empty() && overflow_.top().at - base_ <= mask_) {
      const Event& e = overflow_.top();
      buckets_[e.at & mask_].events.push_back(e);
      ++in_ring_;
      overflow_.pop();
    }
  }

  std::vector<bucket> buckets_;
  std::size_t mask_;
  sim_time base_ = 0;         ///< earliest time the ring can hold
  std::size_t in_ring_ = 0;   ///< events resident in buckets
  std::size_t size_ = 0;      ///< total events (ring + heap)
  std::priority_queue<Event, std::vector<Event>, After> overflow_;
};

/// Chooses per-message delivery delays and reacts to quiescence.
class scheduler {
 public:
  virtual ~scheduler() = default;

  /// Delay (>= 1) applied to the delivery event created for this send.
  virtual sim_time delay(node_id from, node_id to, const message& m) = 0;

  /// Called when the event queue drains.  May wake nodes or unblock held
  /// senders via the network reference.  Return true iff anything was
  /// injected (the run loop continues); false ends the run.
  virtual bool on_quiescence(network&) { return false; }

  /// Timing hook: called by the network after each event loop with the
  /// cumulative run_timing.  Default is a no-op; adaptive schedulers and
  /// telemetry collectors can override to observe throughput.
  virtual void on_run_timing(const run_timing&) {}
};

/// Every message takes exactly one time unit.  With the deterministic
/// seq-number tie-break this yields a canonical, repeatable execution.
class unit_delay_scheduler final : public scheduler {
 public:
  sim_time delay(node_id, node_id, const message&) override { return 1; }
};

/// Uniform random delays in [min_delay, max_delay] — the workhorse for
/// property sweeps: different seeds exercise different interleavings.
class random_delay_scheduler final : public scheduler {
 public:
  explicit random_delay_scheduler(std::uint64_t seed, sim_time min_delay = 1,
                                  sim_time max_delay = 64);
  sim_time delay(node_id, node_id, const message&) override;

 private:
  rng rng_;
  sim_time min_delay_;
  sim_time max_delay_;
};

/// Heavy-tailed delays (discrete Pareto-like: ~1/d^alpha tail, capped) —
/// closer to Internet latency than uniform jitter: most messages are fast,
/// a few straggle by orders of magnitude.  The model only requires finite
/// delays, so every correctness property must survive these schedules too.
class heavy_tail_delay_scheduler final : public scheduler {
 public:
  explicit heavy_tail_delay_scheduler(std::uint64_t seed,
                                      double tail_alpha = 1.3,
                                      sim_time cap = 100'000);
  sim_time delay(node_id, node_id, const message&) override;

 private:
  rng rng_;
  double tail_alpha_;
  sim_time cap_;
};

}  // namespace asyncrd::sim
