#include "sim/network.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>

#include "common/bitmath.h"

namespace asyncrd::sim {

namespace {

/// Stateless 64-bit finalizer (murmur3) used to derive per-channel fault
/// streams and outage phases from (plan seed, from, to).
std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

/// Domain separators: the fault stream and the outage phase of a channel
/// must be independent even though both derive from (seed, from, to).
constexpr std::uint64_t fault_stream_salt = 0xC8A5'5151'7ED5'58CCull;
constexpr std::uint64_t outage_phase_salt = 0x09E3'779B'97F4'A7C1ull;

/// The calling thread's deferral sink during a parallel window phase
/// (sim/parallel_engine.h).  Thread-local so worker handlers reach their
/// own shard's log with no synchronization; null outside a phase.
thread_local deferral_sink* tls_deferral = nullptr;

}  // namespace

void network::set_thread_deferral(deferral_sink* sink) noexcept {
  tls_deferral = sink;
}

void network::defer_user_record(std::uint64_t a, std::uint64_t b,
                                std::uint64_t c) {
  assert(deferred_ && tls_deferral != nullptr);
  tls_deferral->defer_user(a, b, c);
}

void multi_observer::add(observer* obs) {
  assert(obs != nullptr);
  assert(std::find(observers_.begin(), observers_.end(), obs) ==
         observers_.end());
  observers_.push_back(obs);
}

bool multi_observer::remove(observer* obs) {
  const auto it = std::find(observers_.begin(), observers_.end(), obs);
  if (it == observers_.end()) return false;
  observers_.erase(it);
  return true;
}

sim_time context::now() const noexcept { return net_->now(); }

void network::add_health_probe(health_probe* p, sim_time first_at) {
  assert(p != nullptr);
  probes_.emplace_back(p, first_at < now_ ? now_ : first_at);
  next_probe_ = std::min(next_probe_, probes_.back().second);
}

bool network::remove_health_probe(health_probe* p) {
  const auto it = std::find_if(probes_.begin(), probes_.end(),
                               [p](const auto& e) { return e.first == p; });
  if (it == probes_.end()) return false;
  probes_.erase(it);
  next_probe_ = no_probe;
  for (const auto& [probe, at] : probes_)
    next_probe_ = std::min(next_probe_, at);
  return true;
}

void network::fire_probes() {
  // Probes may detach (return 0) but must not register new probes from
  // inside on_probe — the vector must not reallocate mid-iteration.
  for (auto& [probe, at] : probes_) {
    if (now_ < at) continue;
    const sim_time next = probe->on_probe(*this);
    at = next == 0 ? no_probe : (next <= now_ ? now_ + 1 : next);
  }
  probes_.erase(std::remove_if(probes_.begin(), probes_.end(),
                               [](const auto& e) { return e.second == no_probe; }),
                probes_.end());
  next_probe_ = no_probe;
  for (const auto& [probe, at] : probes_)
    next_probe_ = std::min(next_probe_, at);
}

void context::send(node_id to, message_ptr m) {
  net_->send_internal(self_, to, std::move(m));
}

void network::reserve_nodes(std::size_t n) {
  slots_.reserve(n);
  node_index_.reserve(n);
}

void network::add_node(node_id id, std::unique_ptr<process> p) {
  assert(p != nullptr);
  // The slot table is read lock-free by every worker during a parallel
  // window phase; dynamic additions must happen between windows.
  if (deferred_)
    throw std::logic_error("add_node from inside a parallel window phase");
  if (index_of(id) != npos) throw std::invalid_argument("duplicate node id");
  const auto idx = static_cast<std::uint32_t>(slots_.size());
  slots_.emplace_back();
  slots_.back().proc = std::move(p);
  slots_.back().id = id;
  node_index_.insert(id, idx);
}

std::vector<node_id> network::node_ids() const {
  std::vector<node_id> out;
  out.reserve(slots_.size());
  for (const node_slot& slot : slots_) out.push_back(slot.id);
  std::sort(out.begin(), out.end());
  return out;
}

process* network::find(node_id id) {
  const std::uint32_t i = index_of(id);
  return i == npos ? nullptr : slots_[i].proc.get();
}

const process* network::find(node_id id) const {
  const std::uint32_t i = index_of(id);
  return i == npos ? nullptr : slots_[i].proc.get();
}

bool network::is_awake(node_id id) const {
  const std::uint32_t i = index_of(id);
  return i != npos && slots_[i].awake;
}

void network::wake(node_id id) {
  if (deferred_)
    throw std::logic_error("wake from inside a parallel window phase");
  const std::uint32_t idx = index_of(id);
  if (idx == npos) throw std::invalid_argument("wake: unknown node");
  // A wake requested at quiescence (Lemma 3.1's driver) — or from inside a
  // running activation — is causally ordered after everything that already
  // happened: anchor it to the activation in progress, or the last
  // completed one.
  if (manual_mode_) {
    // The anchor must ride along with the pending wake: when take_step
    // eventually fires it, the requesting activation is its genealogy
    // parent, exactly as in scheduled mode.  (Dropping it here used to make
    // every explored wake a false causal root.)
    if (!slots_[idx].awake) pending_wakes_.emplace(id, current_anchor());
    return;
  }
  push_event(now_ + 1, event_kind::wake, idx, current_anchor());
}

void network::set_manual_mode() {
  if (!events_.empty() || !channels_empty())
    throw std::logic_error("set_manual_mode after traffic");
  if (faults_on_ || adapter_ != nullptr)
    throw std::logic_error("set_manual_mode with chaos transport armed");
  manual_mode_ = true;
}

void network::set_fault_plan(const fault_plan& plan) {
  if (manual_mode_)
    throw std::logic_error("set_fault_plan in manual mode");
  if (!events_.empty() || !channels_empty())
    throw std::logic_error("set_fault_plan after traffic");
  plan_ = plan;
  faults_on_ = plan.enabled();
  for (channel& ch : channels_)
    ch.fault_rng =
        rng(mix64(plan_.seed ^ fault_stream_salt ^ pack(ch.from, ch.to)));
}

void network::set_link_adapter(link_adapter* a) {
  if (manual_mode_)
    throw std::logic_error("set_link_adapter in manual mode");
  if (!events_.empty() || !channels_empty())
    throw std::logic_error("set_link_adapter after traffic");
  adapter_ = a;
}

void network::set_wire_codec(const wire_codec* c) {
  if (manual_mode_) throw std::logic_error("set_wire_codec in manual mode");
  if (!events_.empty() || !channels_empty())
    throw std::logic_error("set_wire_codec after traffic");
  codec_ = c;
}

message_ptr network::wire_encode(message_ptr m) {
  const std::uint8_t tag = m->dispatch_tag();
  const std::uint8_t inner =
      tag & static_cast<std::uint8_t>(~wire::wire_bit);
  if (inner == 0 || inner >= codec_->encode.size() ||
      codec_->encode[inner] == nullptr)
    return m;  // no wire form for this type: pass through, uncounted
  if ((tag & wire::wire_bit) != 0) {
    // Already encoded — a routing hop forwarding the frame it received.
    // Each hop is a wire transmission, so the bytes count again.
    const auto& wm = static_cast<const wire_msg&>(*m);
    wire_slot& s = wire_slots_[inner];
    if (s.name.empty()) s.name = wm.type_name();
    ++s.frames;
    s.bytes += wm.size();
    ++wire_frames_;
    wire_bytes_ += wm.size();
    return m;
  }
  // Encode runs with deferred_ off only (parallel replay funnels every app
  // send back through send_internal serially), so one scratch buffer per
  // thread is plenty and the counters advance in serial (at, seq) order.
  static thread_local std::vector<std::uint8_t> scratch;
  scratch.clear();
  codec_->encode[inner](*m, scratch);
  wire_slot& s = wire_slots_[inner];
  if (s.name.empty()) s.name = m->type_name();
  ++s.frames;
  s.bytes += scratch.size();
  ++wire_frames_;
  wire_bytes_ += scratch.size();
  // The frame's bytes are what a socket would carry and are counted above
  // for every encoded type; the frame *object* only replaces the struct
  // where that shrinks the resident footprint (see wire_codec::materialize).
  if (!codec_->materialize[inner]) return m;
  return make_message<wire_msg>(*m, scratch.data(), scratch.size());
}

bool network::outage_active(const channel& ch) const noexcept {
  if (plan_.outage_period == 0 || plan_.outage_duration == 0) return false;
  const std::uint64_t phase =
      mix64(plan_.seed ^ outage_phase_salt ^ pack(ch.from, ch.to)) %
      plan_.outage_period;
  return (now_ + phase) % plan_.outage_period < plan_.outage_duration;
}

std::vector<network::manual_step> network::manual_options() const {
  std::vector<manual_step> out;
  for (const auto& [v, anchor] : pending_wakes_)
    out.push_back({true, v, invalid_node});
  // Channels live in creation order; restore the (from, to) id order the
  // exhaustive driver's choice indices are defined over.
  std::vector<manual_step> delivers;
  for (const channel& ch : channels_)
    if (!ch.queue.empty()) delivers.push_back({false, ch.from, ch.to});
  std::sort(delivers.begin(), delivers.end());
  out.insert(out.end(), delivers.begin(), delivers.end());
  return out;
}

void network::take_step(const manual_step& s) {
  if (!manual_mode_) throw std::logic_error("take_step outside manual mode");
  ++now_;
  if (s.is_wake) {
    const auto it = pending_wakes_.find(s.a);
    if (it == pending_wakes_.end())
      throw std::invalid_argument("take_step: wake not pending");
    const std::uint64_t anchor = it->second;
    pending_wakes_.erase(it);
    ensure_awake(index_of(s.a), anchor, trace_context::none);
    return;
  }
  const std::uint32_t ci = find_channel(index_of(s.a), index_of(s.b));
  if (ci == npos || channels_[ci].queue.empty())
    throw std::invalid_argument("take_step: channel empty");
  channel& ch = channels_[ci];
  queued_msg q = std::move(ch.queue.front());
  ch.queue.pop_front();
  if (ch.unscheduled > 0) --ch.unscheduled;
  --in_flight_;
  const std::uint32_t to_index = ch.to_index;
  // Callbacks may create channels (vector may reallocate): ch is dead now.
  ensure_awake(to_index, q.sent_in, q.released_in);
  begin_activation(q.sent_in, q.released_in, q.sent_at);
  observers_.on_deliver(now_, s.a, s.b, *q.m);
  ++app_deliveries_;
  context ctx(*this, s.b);
  slots_[to_index].proc->on_message(ctx, s.a, q.m);
  end_activation();
}

void network::block_sender(node_id id) {
  const std::uint32_t idx = index_of(id);
  if (idx == npos) throw std::invalid_argument("block_sender: unknown node");
  // Blocking must precede any traffic from the node: otherwise already
  // scheduled deliveries would pop the held channel heads out from under
  // the adversary.
  for (const std::uint32_t ci : slots_[idx].out) {
    if (!channels_[ci].queue.empty())
      throw std::logic_error("block_sender after traffic from node");
  }
  slots_[idx].blocked = true;
}

void network::unblock_sender(node_id id) {
  const std::uint32_t idx = index_of(id);
  if (idx == npos) return;
  slots_[idx].blocked = false;
  // The release is itself a causal fact: the adversary observed quiescence
  // (or the current activation) before letting these messages through.
  const std::uint64_t released_by = current_anchor();
  // slot.out is sorted by destination id, so held channels release in the
  // same (from, to) order the std::map implementation produced.
  for (const std::uint32_t ci : slots_[idx].out) {
    if (channels_[ci].unscheduled == 0) continue;
    // Pull the held tail out of the queue, then put each message on the
    // wire through the same choke point scheduled sends use — so release is
    // the second fault-injection point, and each held message gets its own
    // delivery event, delayed according to *that* message (a
    // message-dependent scheduler must never be shown the channel head for
    // every event).
    std::vector<queued_msg> held;
    {
      channel& ch = channels_[ci];
      held.reserve(ch.unscheduled);
      for (std::size_t i = ch.queue.size() - ch.unscheduled;
           i < ch.queue.size(); ++i)
        held.push_back(std::move(ch.queue[i]));
      ch.queue.resize(ch.queue.size() - held.size());
      ch.unscheduled = 0;
    }
    for (queued_msg& q : held) {
      q.released_in = released_by;
      schedule_transmission(ci, std::move(q), /*counted=*/true);
    }
  }
}

sim_time network::scheduled_delay(node_id from, node_id to, const message& m) {
  const sim_time d = sched_->delay(from, to, m);
  assert(d >= 1 && "scheduler::delay contract: delays are >= 1");
  // Release builds: clamp instead of crashing so simulated time stays
  // strictly monotone (a 0 delay would deliver at `now`, before the events
  // already dispatched at `now`).
  return d == 0 ? 1 : d;
}

void network::send_internal(node_id from, node_id to, message_ptr m) {
  assert(m != nullptr);
  // Window phase: the send is an *effect* of a handler running ahead of
  // its serial turn — log it for barrier replay (where this function runs
  // again with deferred_ off, in exact (at, seq) order, so the adapter's
  // send state and every RNG stream advance as they would serially).
  if (deferred_) {
    assert(tls_deferral != nullptr);
    tls_deferral->defer_app_send(from, to, std::move(m));
    return;
  }
  // Wire mode: encode (or recognize a forwarded frame) and account bytes
  // here — the one choke point every application send funnels through,
  // before the fault plan or the adapter see it.  Counted bytes are the
  // application bytes *offered* to the transport: chaos drops/duplicates
  // and ARQ retransmissions below this line don't change them.
  if (codec_ != nullptr) m = wire_encode(std::move(m));
  // Service mode: a destination this network does not host exits through
  // the gateway.  Accounted like any send (stats, observers) so a
  // multi-process run reports the same per-node totals as a sim run; the
  // gateway's own transport handles reliability, so the local fault plan
  // and link adapter do not apply.
  if (gateway_ != nullptr && index_of(to) == npos) {
    stats_.record(*m);
    if (!observers_.empty()) {
      prof_scope ps(prof_, cost_profiler::phase::observers);
      observers_.on_send(now_, from, to, *m);
    }
    gateway_->remote_send(from, to, std::move(m));
    return;
  }
  // With a reliable-delivery adapter installed, application sends detour
  // through it; the adapter re-enters via transport_send with its envelopes.
  if (adapter_ != nullptr) {
    adapter_->app_send(from, to, std::move(m));
    return;
  }
  transport_send(from, to, std::move(m));
}

void network::transport_send(node_id from, node_id to, message_ptr m) {
  assert(m != nullptr);
  // Window phase: defer before touching stats, observers, or channels —
  // all of those are shared and must mutate in serial order at the barrier.
  if (deferred_) {
    assert(tls_deferral != nullptr);
    tls_deferral->defer_wire_send(from, to, std::move(m));
    return;
  }
  const std::uint32_t to_idx = index_of(to);
  if (to_idx == npos) throw std::invalid_argument("send: unknown destination");
  const std::uint32_t from_idx = index_of(from);
  if (from_idx == npos) throw std::invalid_argument("send: unknown sender");
  stats_.record(*m);
  if (!observers_.empty()) {
    prof_scope ps(prof_, cost_profiler::phase::observers);
    observers_.on_send(now_, from, to, *m);
  }

  std::uint32_t ci;
  if (slots_[from_idx].last_to == to_idx) {
    ci = slots_[from_idx].last_ci;
  } else {
    ci = channel_of(from_idx, to_idx);
    slots_[from_idx].last_to = to_idx;
    slots_[from_idx].last_ci = ci;
  }
  queued_msg q{std::move(m), tctx_.active ? tctx_.event_id : trace_context::none,
               trace_context::none, now_};
  if (manual_mode_ || slots_[from_idx].blocked) {
    // Held messages are not on the wire yet: the fault plan rules on them
    // at release time (unblock_sender), not here.
    ++in_flight_;
    channel& ch = channels_[ci];
    ch.queue.push_back(std::move(q));
    ++ch.unscheduled;
    return;
  }
  // Driver sends (probe, dynamic additions) happen between events; they are
  // causally ordered after the last completed activation.
  if (!tctx_.active) q.released_in = last_event_;
  schedule_transmission(ci, std::move(q), /*counted=*/false);
}

void network::schedule_transmission(std::uint32_t ci, queued_msg q,
                                    bool counted) {
  const node_id from = channels_[ci].from;
  const node_id to = channels_[ci].to;
  if (faults_on_) {
    prof_scope fs(prof_, cost_profiler::phase::fault_rule);
    ++fault_stats_.transmissions;
    if (outage_active(channels_[ci])) {
      ++fault_stats_.outage_drops;
      if (counted) --in_flight_;
      return;
    }
    if (plan_.drop > 0.0 && channels_[ci].fault_rng.chance(plan_.drop)) {
      ++fault_stats_.drops;
      if (counted) --in_flight_;
      return;
    }
  }
  if (!counted) ++in_flight_;
  sim_time d = scheduled_delay(from, to, *q.m);
  bool dup = false;
  if (faults_on_) {
    prof_scope fs(prof_, cost_profiler::phase::fault_rule);
    if (plan_.reorder_slack > 0) {
      // Extra delay within the model's freedom: delivery stays finite and
      // >= the scheduler's choice; per-channel FIFO stays structural (a
      // delivery event always releases the channel head), so slack shuffles
      // *cross-channel* interleavings only.
      const auto extra = static_cast<sim_time>(channels_[ci].fault_rng.below(
          static_cast<std::uint64_t>(plan_.reorder_slack) + 1));
      fault_stats_.reorder_delay += extra;
      d += extra;
    }
    dup = plan_.duplicate > 0.0 && channels_[ci].fault_rng.chance(plan_.duplicate);
  }
  if (!dup) {
    channels_[ci].queue.push_back(std::move(q));
    push_event(now_ + d, event_kind::deliver, ci);
    return;
  }
  // A duplicate is a full extra transmission — accounted in stats and shown
  // to observers (that cost is what bench_chaos_overhead measures), same
  // causal record, its own delay roll.
  queued_msg copy{q.m, q.sent_in, q.released_in, q.sent_at};
  channels_[ci].queue.push_back(std::move(q));
  push_event(now_ + d, event_kind::deliver, ci);
  ++fault_stats_.duplicates;
  ++in_flight_;
  stats_.record(*copy.m);
  if (!observers_.empty()) {
    prof_scope ps(prof_, cost_profiler::phase::observers);
    observers_.on_send(now_, from, to, *copy.m);
  }
  sim_time dd = scheduled_delay(from, to, *copy.m);
  if (plan_.reorder_slack > 0) {
    const auto extra = static_cast<sim_time>(channels_[ci].fault_rng.below(
        static_cast<std::uint64_t>(plan_.reorder_slack) + 1));
    fault_stats_.reorder_delay += extra;
    dd += extra;
  }
  channels_[ci].queue.push_back(std::move(copy));
  push_event(now_ + dd, event_kind::deliver, ci);
}

void network::app_deliver(node_id to, node_id from, const message_ptr& m) {
  assert(m != nullptr);
  // Window phase: the handler runs *now* on the worker (delivering the
  // application payload is the parallel work); only the delivery count is
  // deferred.  The per-shard trace identity stands in for tctx_.
  if (deferred_) {
    assert(tls_deferral != nullptr);
    const std::uint32_t widx = index_of(to);
    if (widx == npos) throw std::invalid_argument("app_deliver: unknown node");
    tls_deferral->note_app_delivery();
    context ctx(*this, to);
    slots_[widx].proc->on_message(ctx, from, m);
    return;
  }
  if (!tctx_.active)
    throw std::logic_error("app_deliver outside a delivery activation");
  const std::uint32_t to_index = index_of(to);
  if (to_index == npos)
    throw std::invalid_argument("app_deliver: unknown node");
  // No observer callback here: observers and stats account the *transport*
  // level (the envelope delivery already fired on_deliver); this is the
  // adapter releasing the reassembled application message to the process.
  ++app_deliveries_;
  context ctx(*this, to);
  // Handler time buckets by the *application* message's dispatch tag even
  // under an adapter (the enclosing arq span pauses here).
  prof_scope ps(prof_, m->dispatch_tag(), prof_scope::tag_t{});
  slots_[to_index].proc->on_message(ctx, from, m);
}

void network::inject_remote(node_id to, node_id from, const message_ptr& m) {
  assert(m != nullptr);
  if (tctx_.active)
    throw std::logic_error("inject_remote from inside an activation");
  const std::uint32_t to_index = index_of(to);
  if (to_index == npos)
    throw std::invalid_argument("inject_remote: unknown destination");
  // One remote arrival is one delivery activation, exactly like the manual
  // stepper's delivery arm: virtual time advances by a tick, the node wakes
  // if this is its first contact, and observers see a normal delivery.  The
  // causal parents are none — the sending activation lives in another
  // process; cross-process genealogy is the trace merger's job, not ours.
  ++now_;
  ensure_awake(to_index, trace_context::none, trace_context::none);
  begin_activation(trace_context::none, trace_context::none, now_);
  if (flight_ != nullptr)
    flight_->record({now_, tctx_.event_id, trace_context::none, from, to,
                     flight_entry::kind::deliver, m->dispatch_tag()});
  if (!observers_.empty()) {
    prof_scope ps(prof_, cost_profiler::phase::observers);
    observers_.on_deliver(now_, from, to, *m);
  }
  ++app_deliveries_;
  context ctx(*this, to);
  slots_[to_index].proc->on_message(ctx, from, m);
  end_activation();
}

void network::schedule_adapter_timer(sim_time delay, std::uint64_t key) {
  if (adapter_ == nullptr)
    throw std::logic_error("schedule_adapter_timer without adapter");
  if (deferred_) {
    assert(tls_deferral != nullptr);
    tls_deferral->defer_timer(delay, key);
    return;
  }
  push_event(now_ + (delay == 0 ? 1 : delay), event_kind::timer, 0, key);
}

std::uint32_t network::channel_of(std::uint32_t from, std::uint32_t to) {
  const std::uint64_t key = pack(from, to);
  const std::uint32_t found = channel_index_.find(key);
  if (found != npos) return found;
  const auto ci = static_cast<std::uint32_t>(channels_.size());
  channels_.emplace_back();
  channels_.back().from = slots_[from].id;
  channels_.back().to = slots_[to].id;
  channels_.back().to_index = to;
  // Seeded from node *ids*, not slot indices or creation order: the fault
  // stream of channel (u, v) is the same in every execution of the plan.
  if (faults_on_)
    channels_.back().fault_rng = rng(mix64(
        plan_.seed ^ fault_stream_salt ^ pack(slots_[from].id, slots_[to].id)));
  channel_index_.insert(key, ci);
  // Insertion-sort into the sender's out-list by destination id: the list
  // is consulted in id order by block/unblock (determinism) and stays tiny
  // (out-degree of the knowledge graph).
  auto& out = slots_[from].out;
  const node_id to_id = slots_[to].id;
  auto it = out.begin();
  while (it != out.end() && channels_[*it].to < to_id) ++it;
  out.insert(it, ci);
  return ci;
}

void network::begin_activation(std::uint64_t cause, std::uint64_t release,
                               sim_time sent_at) {
  tctx_.event_id = next_event_id_++;
  tctx_.cause = cause;
  tctx_.release = release;
  tctx_.sent_at = sent_at;
  tctx_.active = true;
}

void network::end_activation() {
  last_event_ = tctx_.event_id;
  tctx_ = trace_context{};
}

void network::ensure_awake(std::uint32_t idx, std::uint64_t cause,
                           std::uint64_t release) {
  node_slot& slot = slots_[idx];
  if (slot.awake) return;
  slot.awake = true;
  process* proc = slot.proc.get();
  const node_id id = slot.id;
  // Callbacks may add nodes (vector may reallocate): slot is dead now.
  begin_activation(cause, release, now_);
  if (flight_ != nullptr)
    flight_->record({now_, tctx_.event_id, cause, id, invalid_node,
                     flight_entry::kind::wake, 0});
  {
    prof_scope ps(prof_, cost_profiler::phase::observers);
    observers_.on_wake(now_, id);
  }
  context ctx(*this, id);
  {
    prof_scope ps(prof_, cost_profiler::phase::wake);
    proc->on_wake(ctx);
  }
  end_activation();
}

void network::dispatch(const event& ev) {
  now_ = ev.at;
  switch (ev.kind) {
    case event_kind::wake: {
      ensure_awake(ev.target, ev.cause, trace_context::none);
      break;
    }
    case event_kind::deliver: {
      channel& ch = channels_[ev.target];
      assert(!ch.queue.empty());
      // FIFO: a delivery event always releases the channel head, regardless
      // of which send created the event.
      queued_msg q = std::move(ch.queue.front());
      ch.queue.pop_front();
      --in_flight_;
      const node_id from = ch.from;
      const node_id to = ch.to;
      const std::uint32_t to_index = ch.to_index;
      // Callbacks may create channels (vector may reallocate): ch is dead.
      // A message-induced wake shares the arriving message's causes.
      ensure_awake(to_index, q.sent_in, q.released_in);
      begin_activation(q.sent_in, q.released_in, q.sent_at);
      if (flight_ != nullptr)
        flight_->record({now_, tctx_.event_id, q.sent_in, from, to,
                         flight_entry::kind::deliver, q.m->dispatch_tag()});
      if (!observers_.empty()) {
        prof_scope ps(prof_, cost_profiler::phase::observers);
        observers_.on_deliver(now_, from, to, *q.m);
      }
      if (adapter_ != nullptr) {
        // Transport-level arrival: the adapter dedups/reorders and releases
        // application messages via app_deliver inside this activation.
        prof_scope ps(prof_, cost_profiler::phase::arq);
        adapter_->transport_deliver(from, to, q.m);
      } else {
        ++app_deliveries_;
        context ctx(*this, to);
        prof_scope ps(prof_, q.m->dispatch_tag(), prof_scope::tag_t{});
        slots_[to_index].proc->on_message(ctx, from, q.m);
      }
      end_activation();
      break;
    }
    case event_kind::timer: {
      // Timer callbacks run between activations (like quiescence hooks):
      // retransmissions they trigger are causally ordered after the last
      // completed activation.
      if (flight_ != nullptr)
        flight_->record({now_, flight_entry::none, ev.cause, invalid_node,
                         invalid_node, flight_entry::kind::timer, 0});
      if (adapter_ != nullptr) {
        prof_scope ps(prof_, cost_profiler::phase::arq);
        adapter_->on_timer(ev.cause);
      }
      break;
    }
  }
}

void network::push_event(sim_time at, event_kind kind, std::uint32_t target,
                         std::uint64_t cause) {
  events_.push(event{at, seq_++, cause, target, kind});
}

void network::finalize_id_bits() {
  if (id_bits_fixed_) return;
  id_bits_fixed_ = true;
  if (stats_.id_bits() <= 1 && slots_.size() > 2)
    stats_.set_id_bits(ceil_log2(slots_.size()));
}

run_result network::run_to_quiescence(std::uint64_t max_events) {
  finalize_id_bits();
  stop_requested_ = false;
  run_result r;
  const auto start = std::chrono::steady_clock::now();
  if (prof_ != nullptr) prof_->loop_enter();
  while (!events_.empty()) {
    if (r.events_processed++ >= max_events) {
      r.completed = false;
      break;
    }
    if (prof_ == nullptr) {
      dispatch(events_.pop());
    } else {
      prof_->event_begin();
      prof_->begin(cost_profiler::phase::queue_pop);
      const event ev = events_.pop();
      prof_->end();
      dispatch(ev);
    }
    // Runtime health: one compare per event when no probe is due.
    if (now_ >= next_probe_) {
      prof_scope ps(prof_, cost_profiler::phase::probes);
      fire_probes();
      if (stop_requested_) {
        r.completed = false;
        r.stopped = true;
        break;
      }
    }
    if (prof_ != nullptr) prof_->event_end();
  }
  if (prof_ != nullptr) prof_->loop_exit();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ++timing_.loops;
  timing_.events += r.events_processed;
  timing_.wall_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  sched_->on_run_timing(timing_);
  return r;
}

run_result network::run(std::uint64_t max_events) {
  finalize_id_bits();
  run_result total;
  int idle_iterations = 0;
  for (;;) {
    run_result r = run_to_quiescence(max_events - total.events_processed);
    total.events_processed += r.events_processed;
    if (!r.completed) {
      total.completed = false;
      total.stopped = r.stopped;
      return total;
    }
    // A correct quiescence hook that returns true must have injected work
    // (a wake event or an unblocked channel); two consecutive no-progress
    // iterations mean the hook is stuck and the run is aborted.
    idle_iterations = (r.events_processed == 0) ? idle_iterations + 1 : 0;
    if (idle_iterations > 2) {
      total.completed = false;
      return total;
    }
    if (!sched_->on_quiescence(*this)) break;
  }
  return total;
}

}  // namespace asyncrd::sim
