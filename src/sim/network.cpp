#include "sim/network.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>

#include "common/bitmath.h"

namespace asyncrd::sim {

void multi_observer::add(observer* obs) {
  assert(obs != nullptr);
  assert(std::find(observers_.begin(), observers_.end(), obs) ==
         observers_.end());
  observers_.push_back(obs);
}

bool multi_observer::remove(observer* obs) {
  const auto it = std::find(observers_.begin(), observers_.end(), obs);
  if (it == observers_.end()) return false;
  observers_.erase(it);
  return true;
}

sim_time context::now() const noexcept { return net_->now(); }

void context::send(node_id to, message_ptr m) {
  net_->send_internal(self_, to, std::move(m));
}

void network::add_node(node_id id, std::unique_ptr<process> p) {
  assert(p != nullptr);
  const auto [it, inserted] = nodes_.emplace(id, node_slot{});
  if (!inserted) throw std::invalid_argument("duplicate node id");
  it->second.proc = std::move(p);
}

std::vector<node_id> network::node_ids() const {
  std::vector<node_id> out;
  out.reserve(nodes_.size());
  for (const auto& [id, slot] : nodes_) out.push_back(id);
  return out;
}

process* network::find(node_id id) {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.proc.get();
}

const process* network::find(node_id id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.proc.get();
}

bool network::is_awake(node_id id) const {
  const auto it = nodes_.find(id);
  return it != nodes_.end() && it->second.awake;
}

void network::wake(node_id id) {
  if (!nodes_.contains(id)) throw std::invalid_argument("wake: unknown node");
  if (manual_mode_) {
    if (!nodes_.at(id).awake) pending_wakes_.insert(id);
    return;
  }
  // A wake requested at quiescence (Lemma 3.1's driver) is causally ordered
  // after everything that already happened: anchor it to the activation in
  // progress, or the last completed one.
  push_event(now_ + 1, event_kind::wake, id, invalid_node, current_anchor());
}

void network::set_manual_mode() {
  if (!events_.empty() || !channels_empty())
    throw std::logic_error("set_manual_mode after traffic");
  manual_mode_ = true;
}

std::vector<network::manual_step> network::manual_options() const {
  std::vector<manual_step> out;
  for (const node_id v : pending_wakes_)
    out.push_back({true, v, invalid_node});
  for (const auto& [key, ch] : channels_)
    if (!ch.queue.empty()) out.push_back({false, key.first, key.second});
  return out;  // map/set iteration: already deterministically ordered
}

void network::take_step(const manual_step& s) {
  if (!manual_mode_) throw std::logic_error("take_step outside manual mode");
  ++now_;
  if (s.is_wake) {
    if (pending_wakes_.erase(s.a) == 0)
      throw std::invalid_argument("take_step: wake not pending");
    ensure_awake(s.a, trace_context::none, trace_context::none);
    return;
  }
  const auto it = channels_.find({s.a, s.b});
  if (it == channels_.end() || it->second.queue.empty())
    throw std::invalid_argument("take_step: channel empty");
  queued_msg q = std::move(it->second.queue.front());
  it->second.queue.pop_front();
  if (it->second.unscheduled > 0) --it->second.unscheduled;
  ensure_awake(s.b, q.sent_in, q.released_in);
  begin_activation(q.sent_in, q.released_in, q.sent_at);
  observers_.on_deliver(now_, s.a, s.b, *q.m);
  context ctx(*this, s.b);
  nodes_.at(s.b).proc->on_message(ctx, s.a, q.m);
  end_activation();
}

void network::block_sender(node_id id) {
  // Blocking must precede any traffic from the node: otherwise already
  // scheduled deliveries would pop the held channel heads out from under
  // the adversary.
  for (const auto& [key, ch] : channels_) {
    if (key.first == id && !ch.queue.empty())
      throw std::logic_error("block_sender after traffic from node");
  }
  blocked_senders_.insert(id);
}

void network::unblock_sender(node_id id) {
  blocked_senders_.erase(id);
  // The release is itself a causal fact: the adversary observed quiescence
  // (or the current activation) before letting these messages through.
  const std::uint64_t released_by = current_anchor();
  for (auto& [key, ch] : channels_) {
    if (key.first != id) continue;
    for (std::size_t i = ch.queue.size() - ch.unscheduled; i < ch.queue.size();
         ++i)
      ch.queue[i].released_in = released_by;
    while (ch.unscheduled > 0) {
      --ch.unscheduled;
      push_event(
          now_ + sched_->delay(key.first, key.second, *ch.queue.front().m),
          event_kind::deliver, key.first, key.second);
    }
  }
}

void network::send_internal(node_id from, node_id to, message_ptr m) {
  assert(m != nullptr);
  if (!nodes_.contains(to)) throw std::invalid_argument("send: unknown destination");
  stats_.record(*m);
  observers_.on_send(now_, from, to, *m);

  auto& ch = channels_[{from, to}];
  queued_msg q{std::move(m), tctx_.active ? tctx_.event_id : trace_context::none,
               trace_context::none, now_};
  if (manual_mode_ || blocked_senders_.contains(from)) {
    ch.queue.push_back(std::move(q));
    ++ch.unscheduled;
    return;
  }
  // Driver sends (probe, dynamic additions) happen between events; they are
  // causally ordered after the last completed activation.
  if (!tctx_.active) q.released_in = last_event_;
  const sim_time d = sched_->delay(from, to, *q.m);
  ch.queue.push_back(std::move(q));
  push_event(now_ + (d == 0 ? 1 : d), event_kind::deliver, from, to);
}

void network::begin_activation(std::uint64_t cause, std::uint64_t release,
                               sim_time sent_at) {
  tctx_.event_id = next_event_id_++;
  tctx_.cause = cause;
  tctx_.release = release;
  tctx_.sent_at = sent_at;
  tctx_.active = true;
}

void network::end_activation() {
  last_event_ = tctx_.event_id;
  tctx_ = trace_context{};
}

void network::ensure_awake(node_id id, std::uint64_t cause,
                           std::uint64_t release) {
  auto& slot = nodes_.at(id);
  if (slot.awake) return;
  slot.awake = true;
  begin_activation(cause, release, now_);
  observers_.on_wake(now_, id);
  context ctx(*this, id);
  slot.proc->on_wake(ctx);
  end_activation();
}

void network::dispatch(const event& ev) {
  now_ = ev.at;
  switch (ev.kind) {
    case event_kind::wake: {
      ensure_awake(ev.a, ev.cause, trace_context::none);
      break;
    }
    case event_kind::deliver: {
      auto& ch = channels_.at({ev.a, ev.b});
      assert(!ch.queue.empty());
      // FIFO: a delivery event always releases the channel head, regardless
      // of which send created the event.
      queued_msg q = std::move(ch.queue.front());
      ch.queue.pop_front();
      // A message-induced wake shares the arriving message's causes.
      ensure_awake(ev.b, q.sent_in, q.released_in);
      begin_activation(q.sent_in, q.released_in, q.sent_at);
      observers_.on_deliver(now_, ev.a, ev.b, *q.m);
      context ctx(*this, ev.b);
      nodes_.at(ev.b).proc->on_message(ctx, ev.a, q.m);
      end_activation();
      break;
    }
  }
}

void network::push_event(sim_time at, event_kind kind, node_id a, node_id b,
                         std::uint64_t cause) {
  events_.push(event{at, seq_++, kind, a, b, cause});
}

void network::finalize_id_bits() {
  if (id_bits_fixed_) return;
  id_bits_fixed_ = true;
  if (stats_.id_bits() <= 1 && nodes_.size() > 2)
    stats_.set_id_bits(ceil_log2(nodes_.size()));
}

run_result network::run_to_quiescence(std::uint64_t max_events) {
  finalize_id_bits();
  run_result r;
  const auto start = std::chrono::steady_clock::now();
  while (!events_.empty()) {
    if (r.events_processed++ >= max_events) {
      r.completed = false;
      break;
    }
    const event ev = events_.top();
    events_.pop();
    dispatch(ev);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ++timing_.loops;
  timing_.events += r.events_processed;
  timing_.wall_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  sched_->on_run_timing(timing_);
  return r;
}

run_result network::run(std::uint64_t max_events) {
  finalize_id_bits();
  run_result total;
  int idle_iterations = 0;
  for (;;) {
    run_result r = run_to_quiescence(max_events - total.events_processed);
    total.events_processed += r.events_processed;
    if (!r.completed) {
      total.completed = false;
      return total;
    }
    // A correct quiescence hook that returns true must have injected work
    // (a wake event or an unblocked channel); two consecutive no-progress
    // iterations mean the hook is stuck and the run is aborted.
    idle_iterations = (r.events_processed == 0) ? idle_iterations + 1 : 0;
    if (idle_iterations > 2) {
      total.completed = false;
      return total;
    }
    if (!sched_->on_quiescence(*this)) break;
  }
  return total;
}

bool network::channels_empty() const {
  for (const auto& [key, ch] : channels_)
    if (!ch.queue.empty()) return false;
  return true;
}

}  // namespace asyncrd::sim
