// Online cost profiler for the simulator hot path: wall-clock attribution
// of event processing to phases, with zero allocation and near-zero cost
// when disarmed (one pointer test per instrumented site).
//
// Why: ROADMAP item 1 (sharding a single run across worker threads) needs
// to know where the single-thread cycles actually go — queue maintenance,
// fault ruling, ARQ recovery, per-message-type protocol handlers, or the
// tracing/health instruments themselves — before any of it is worth
// parallelizing.  The profiler answers that on a live run instead of
// requiring an external sampling profiler and symbol-level post-processing.
//
// Mechanism: a flat "phase switch" state machine over a cheap monotonic
// tick source (TSC on x86-64, the virtual counter on AArch64,
// steady_clock elsewhere).  Instrumented sites bracket their work with
// begin()/end(); nesting attributes each tick interval to exactly one
// phase (entering an inner phase pauses the outer), so the per-phase
// totals are *exclusive* times that sum to at most the event-loop span.
// The stack is a fixed array — nothing allocates on the hot path — and
// tag-dispatched handler time is bucketed by sim::message::dispatch_tag.
//
// Counts are exact but *ticks are sampled*: a tick read costs ~15-40ns on
// common hosts (more under virtualization), and an instrumented delivery
// crosses ~9 span boundaries, so timing every event costs 20%+ of the
// loop.  Instead the event loop gates each event (event_begin/event_end):
// on 1 in `sample_every` events the spans read real ticks and the event's
// full span accrues into sampled_span_ticks; on the rest every span is a
// count-only increment.  Attribution *fractions* (phase ticks /
// sampled_span_ticks) are unbiased; absolute nanoseconds extrapolate by
// events/sampled_events at report time.  That keeps the armed cost under
// the 5% budget bench_observer_overhead enforces.
//
// Ticks convert to nanoseconds once, at report time, via a steady_clock
// calibration (profile_ticks_per_ns); the hot path never touches the
// slower clock.  telemetry::run_recorder arms one via
// recorder_options::profile; the result serializes as the run report's
// "profile" block and, with the series sampler also armed, exports as
// cumulative "prof.*" Perfetto counter tracks.
#pragma once

#include <array>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#else
#include <chrono>
#endif

namespace asyncrd::sim {

/// Cheap monotonic tick source for hot-path timing.  The unit is
/// unspecified (TSC cycles, a fixed-frequency counter, or nanoseconds);
/// convert with profile_ticks_per_ns at report time.
inline std::uint64_t profile_ticks() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Ticks per nanosecond, calibrated against steady_clock on first call
/// (then cached).  Never called from the hot path.
double profile_ticks_per_ns() noexcept;

class cost_profiler {
 public:
  /// Fixed phases of event processing.  handler time is *not* listed here:
  /// delivery handlers are bucketed per dispatch_tag (tag_bucket), wake
  /// handlers under `wake`.
  enum class phase : std::uint8_t {
    queue_pop,   ///< calendar-queue pop (incl. window slides / migration)
    fault_rule,  ///< chaos fault plan ruling on a transmission
    arq,         ///< reliable-link adapter: transport_deliver / on_timer
    observers,   ///< observer fan-out (tracer, stats feeds, event logs)
    probes,      ///< health probes (series sampler, stall watchdog)
    wake,        ///< process::on_wake handler
  };
  static constexpr std::size_t phase_count = 6;
  static constexpr std::size_t tag_count = 256;  ///< dispatch_tag domain

  struct bucket {
    std::uint64_t ticks = 0;
    std::uint64_t count = 0;
  };

  /// Event gate, called by the loop around each event: picks whether this
  /// event's spans read ticks (1 in sample_every) or just count.  Spans
  /// never straddle the gate, so the sampling flag is stable within them.
  void event_begin() noexcept {
    ++events_;
    if (until_sample_ == 0) {
      until_sample_ = sample_every_ - 1;
      sampling_ = true;
      ++sampled_events_;
      event_started_ = profile_ticks();
    } else {
      --until_sample_;
      sampling_ = false;
    }
  }
  void event_end() noexcept {
    if (sampling_) sampled_span_ += profile_ticks() - event_started_;
  }

  /// Opens a phase span.  Time from now until the next boundary (a nested
  /// begin, or this span's end) is attributed to `p`.
  void begin(phase p) noexcept {
    if (!sampling_) {
      ++phases_[static_cast<std::size_t>(p)].count;
      return;
    }
    push(static_cast<std::uint32_t>(p), phases_.data());
  }

  /// Opens a delivery-handler span bucketed by the message's dispatch tag.
  void begin_tag(std::uint8_t tag) noexcept {
    if (!sampling_) {
      ++tags_[tag].count;
      return;
    }
    push(tag, tags_.data());
  }

  /// Closes the innermost span (attributing its trailing interval).
  void end() noexcept {
    if (!sampling_) return;
    const std::uint64_t t = profile_ticks();
    frame& f = stack_[--depth_];
    f.table[f.slot].ticks += t - last_;
    last_ = t;
  }

  /// Event-loop span accounting: the network brackets run_to_quiescence
  /// with these so `loop_ticks` bounds the attributable total.
  void loop_enter() noexcept { loop_started_ = profile_ticks(); }
  void loop_exit() noexcept { loop_ticks_ += profile_ticks() - loop_started_; }

  const std::array<bucket, phase_count>& phases() const noexcept {
    return phases_;
  }
  const std::array<bucket, tag_count>& tags() const noexcept { return tags_; }
  const bucket& of(phase p) const noexcept {
    return phases_[static_cast<std::size_t>(p)];
  }
  std::uint64_t loop_ticks() const noexcept { return loop_ticks_; }

  std::uint64_t events() const noexcept { return events_; }
  std::uint64_t sampled_events() const noexcept { return sampled_events_; }
  std::uint32_t sample_every() const noexcept { return sample_every_; }
  void set_sample_every(std::uint32_t every) noexcept {
    sample_every_ = every == 0 ? 1 : every;
    until_sample_ = 0;
  }

  /// Total measured span of the sampled events — the denominator for
  /// unbiased attribution fractions (phase ticks / sampled span).
  std::uint64_t sampled_span_ticks() const noexcept { return sampled_span_; }

  /// Extrapolation factor from sampled ticks to whole-run estimates
  /// (events / sampled_events; 1 when nothing was gated).
  double sample_scale() const noexcept {
    return sampled_events_ == 0
               ? 1.0
               : static_cast<double>(events_) /
                     static_cast<double>(sampled_events_);
  }

  /// Sum of ticks attributed to every phase and tag bucket.
  std::uint64_t attributed_ticks() const noexcept {
    std::uint64_t sum = 0;
    for (const bucket& b : phases_) sum += b.ticks;
    for (const bucket& b : tags_) sum += b.ticks;
    return sum;
  }

  /// Exclusive handler ticks across all dispatch tags (sampler column).
  std::uint64_t handler_ticks() const noexcept {
    std::uint64_t sum = 0;
    for (const bucket& b : tags_) sum += b.ticks;
    return sum;
  }

  /// Folds another profiler's totals into this one (additive: counts,
  /// ticks, loop span, event-gate accounting).  The parallel engine keeps
  /// one profiler per shard so workers never share a stack, then merges
  /// them into the armed profiler at the end of the run.  Only settled
  /// totals merge — both profilers must be outside any open span.
  void merge_from(const cost_profiler& o) noexcept {
    for (std::size_t i = 0; i < phase_count; ++i) {
      phases_[i].ticks += o.phases_[i].ticks;
      phases_[i].count += o.phases_[i].count;
    }
    for (std::size_t i = 0; i < tag_count; ++i) {
      tags_[i].ticks += o.tags_[i].ticks;
      tags_[i].count += o.tags_[i].count;
    }
    loop_ticks_ += o.loop_ticks_;
    events_ += o.events_;
    sampled_events_ += o.sampled_events_;
    sampled_span_ += o.sampled_span_;
  }

  void reset() noexcept {
    phases_ = {};
    tags_ = {};
    depth_ = 0;
    loop_ticks_ = 0;
    events_ = 0;
    sampled_events_ = 0;
    sampled_span_ = 0;
    until_sample_ = 0;
    sampling_ = true;
  }

 private:
  struct frame {
    std::uint32_t slot;
    bucket* table;
  };
  static constexpr int max_depth = 16;

  void push(std::uint32_t slot, bucket* table) noexcept {
    const std::uint64_t t = profile_ticks();
    if (depth_ > 0) {
      frame& f = stack_[depth_ - 1];
      f.table[f.slot].ticks += t - last_;
    }
    if (depth_ < max_depth) {
      stack_[depth_].slot = slot;
      stack_[depth_].table = table;
    }
    // Beyond max_depth (never reached by the instrumented sites, which
    // nest at most ~6 deep) the span degrades to attributing into the
    // deepest tracked frame rather than writing out of bounds.
    else {
      --depth_;
    }
    ++depth_;
    ++table[slot].count;
    last_ = t;
  }

  std::array<bucket, phase_count> phases_{};
  std::array<bucket, tag_count> tags_{};
  std::array<frame, max_depth> stack_{};
  int depth_ = 0;
  std::uint64_t last_ = 0;
  std::uint64_t loop_started_ = 0;
  std::uint64_t loop_ticks_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t sampled_events_ = 0;
  std::uint64_t event_started_ = 0;
  std::uint64_t sampled_span_ = 0;
  std::uint32_t sample_every_ = 32;
  std::uint32_t until_sample_ = 0;
  // True outside the event gate so manual begin/end use (tests, ad-hoc
  // instrumentation) always attributes.
  bool sampling_ = true;
};

/// Stable lower-case name of a fixed phase ("queue_pop", "fault_rule", ...).
const char* profile_phase_name(cost_profiler::phase p) noexcept;

/// RAII span: no-op when `p` is nullptr (the disarmed case), so call sites
/// stay one line.  The tag overload opens a dispatch-tag handler span.
class prof_scope {
 public:
  prof_scope(cost_profiler* p, cost_profiler::phase ph) noexcept : p_(p) {
    if (p_ != nullptr) p_->begin(ph);
  }
  struct tag_t {};
  prof_scope(cost_profiler* p, std::uint8_t tag, tag_t) noexcept : p_(p) {
    if (p_ != nullptr) p_->begin_tag(tag);
  }
  ~prof_scope() {
    if (p_ != nullptr) p_->end();
  }
  prof_scope(const prof_scope&) = delete;
  prof_scope& operator=(const prof_scope&) = delete;

 private:
  cost_profiler* p_;
};

}  // namespace asyncrd::sim
