// Per-node traffic accounting: messages sent/received by each node.
// Used for hotspot analysis (the discovery leader concentrates traffic;
// how badly does the maximum per-node load grow with n?).
#pragma once

#include <cstdint>
#include <map>

#include "common/ids.h"
#include "sim/network.h"

namespace asyncrd::sim {

class load_observer final : public observer {
 public:
  explicit load_observer(observer* chain = nullptr) : chain_(chain) {}

  void on_send(sim_time t, node_id from, node_id to,
               const message& m) override {
    ++sent_[from];
    if (chain_ != nullptr) chain_->on_send(t, from, to, m);
  }
  void on_deliver(sim_time t, node_id from, node_id to,
                  const message& m) override {
    ++received_[to];
    if (chain_ != nullptr) chain_->on_deliver(t, from, to, m);
  }
  void on_wake(sim_time t, node_id v) override {
    if (chain_ != nullptr) chain_->on_wake(t, v);
  }

  std::uint64_t sent_by(node_id v) const {
    const auto it = sent_.find(v);
    return it == sent_.end() ? 0 : it->second;
  }
  std::uint64_t received_by(node_id v) const {
    const auto it = received_.find(v);
    return it == received_.end() ? 0 : it->second;
  }
  std::uint64_t load_of(node_id v) const {
    return sent_by(v) + received_by(v);
  }

  /// Node with the largest total load (invalid_node if no traffic).
  node_id hottest() const;
  std::uint64_t max_load() const;

 private:
  observer* chain_;
  std::map<node_id, std::uint64_t> sent_, received_;
};

}  // namespace asyncrd::sim
