// Per-node traffic accounting: messages sent/received by each node.
// Used for hotspot analysis (the discovery leader concentrates traffic;
// how badly does the maximum per-node load grow with n?).
//
// Node ids are dense (0..n-1, with small sparse islands for dynamically
// added nodes), so the counters live in vectors indexed by id — this sits
// on the per-message hot path of every instrumented run and must not pay a
// map lookup per event.  To combine with other observers, register both on
// the network (network::add_observer fans out to every armed observer).
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "sim/network.h"

namespace asyncrd::sim {

class load_observer final : public observer {
 public:
  void on_send(sim_time, node_id from, node_id, const message&) override {
    bump(sent_, from);
  }
  void on_deliver(sim_time, node_id, node_id to, const message&) override {
    bump(received_, to);
  }

  std::uint64_t sent_by(node_id v) const noexcept {
    return v < sent_.size() ? sent_[v] : 0;
  }
  std::uint64_t received_by(node_id v) const noexcept {
    return v < received_.size() ? received_[v] : 0;
  }
  std::uint64_t load_of(node_id v) const noexcept {
    return sent_by(v) + received_by(v);
  }

  /// Node with the largest total load (invalid_node if no traffic).
  node_id hottest() const;
  std::uint64_t max_load() const;

  /// Total load per node, indexed by id, for every id that saw traffic
  /// (trailing zero-load ids trimmed).
  std::vector<std::uint64_t> loads() const;

  void reset();

 private:
  static void bump(std::vector<std::uint64_t>& v, node_id id) {
    if (id >= v.size()) v.resize(static_cast<std::size_t>(id) + 1, 0);
    ++v[id];
  }

  std::vector<std::uint64_t> sent_, received_;
};

}  // namespace asyncrd::sim
