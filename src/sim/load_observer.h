// Per-node traffic accounting: messages sent/received by each node.
// Used for hotspot analysis (the discovery leader concentrates traffic;
// how badly does the maximum per-node load grow with n?).
//
// Node ids are dense (0..n-1, with small sparse islands for dynamically
// added nodes), so the counters live in vectors indexed by id — this sits
// on the per-message hot path of every instrumented run and must not pay a
// map lookup per event.  Ids beyond the dense window spill to a
// flat_u64_map overflow table instead of growing the vectors: one
// dynamically added node with id 10^9 used to balloon the dense vectors to
// a billion entries.  Readers sum both homes, so the split is invisible.
// To combine with other observers, register both on the network
// (network::add_observer fans out to every armed observer).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/flat_hash.h"
#include "common/ids.h"
#include "sim/network.h"

namespace asyncrd::sim {

class load_observer final : public observer {
 public:
  /// Ids below the dense limit index straight into vectors; ids at or above
  /// it go to the spill table.  reserve_dense widens the window when the
  /// run's size is known up front.
  static constexpr std::size_t default_dense_limit = 4096;

  void on_send(sim_time, node_id from, node_id, const message&) override {
    bump(sent_, from);
  }
  void on_deliver(sim_time, node_id, node_id to, const message&) override {
    bump(received_, to);
  }

  /// Widens the dense window to at least `n` ids (never narrows it).
  /// Counts already spilled stay in the spill table; readers see the sum.
  void reserve_dense(std::size_t n);

  std::uint64_t sent_by(node_id v) const noexcept {
    return (v < sent_.size() ? sent_[v] : 0) + spilled(v, /*received=*/false);
  }
  std::uint64_t received_by(node_id v) const noexcept {
    return (v < received_.size() ? received_[v] : 0) +
           spilled(v, /*received=*/true);
  }
  std::uint64_t load_of(node_id v) const noexcept {
    return sent_by(v) + received_by(v);
  }

  /// Node with the largest total load (invalid_node if no traffic).
  node_id hottest() const;
  std::uint64_t max_load() const;

  /// Total load per node within the dense window, indexed by id (trailing
  /// zero-load ids trimmed).  Spilled ids are not represented here — use
  /// all_loads() for the complete picture.
  std::vector<std::uint64_t> loads() const;

  /// (id, total load) for every node that saw traffic — dense and spilled —
  /// ascending by id.  The memory-safe way to walk sparse id spaces.
  std::vector<std::pair<node_id, std::uint64_t>> all_loads() const;

  void reset();

 private:
  struct spill_entry {
    node_id id = invalid_node;
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
  };

  void bump(std::vector<std::uint64_t>& v, node_id id) {
    if (id < dense_limit_) {
      if (id >= v.size()) v.resize(static_cast<std::size_t>(id) + 1, 0);
      ++v[id];
    } else {
      spill_entry& e = spill_for(id);
      ++(&v == &received_ ? e.received : e.sent);
    }
  }

  spill_entry& spill_for(node_id id);
  std::uint64_t spilled(node_id id, bool received) const noexcept;

  std::vector<std::uint64_t> sent_, received_;
  std::size_t dense_limit_ = default_dense_limit;
  flat_u64_map spill_index_;  ///< id -> spill_ index
  std::vector<spill_entry> spill_;
};

}  // namespace asyncrd::sim
