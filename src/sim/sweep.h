// Parallel seed/topology sweeps: fan independent simulations across
// std::thread workers.
//
// The simulator itself is single-threaded by design (determinism comes from
// a total order on events), but property sweeps — N seeds x M variants, each
// a fully independent execution — are embarrassingly parallel: every job
// builds its own scheduler, discovery_run, and network, so no simulator
// state is shared.  parallel_sweep() is the one blessed way to exploit that:
// it owns the thread pool, hands each job a stable worker index (for
// per-worker scratch state), and guarantees the job function is invoked
// exactly once per job index, so callers can write results into a pre-sized
// vector slot per job and read them back in deterministic order afterwards.
//
// Thread-safety contract for the job function:
//   * it may freely build and run networks, runs, schedulers (one per job);
//   * shared inputs (a common graph::digraph, config templates) must be
//     treated as read-only;
//   * writes must go to the job's own slot (distinct indices never race);
//   * sim::make_message's pooled allocator is thread-local and needs no
//     coordination (blocks freed on a different thread than they were
//     allocated on simply migrate to the freeing thread's pool).
//
// Determinism: results are keyed by job index, not completion order, so a
// sweep's merged output is byte-identical whatever the interleaving of
// workers — the same property the event queue gives a single run.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace asyncrd::sim {

/// Persistent thread team for repeated fork/join sections.  The calling
/// thread participates as worker 0 and `size() - 1` helper threads park on
/// a condition variable between rounds, so a round-trip costs two notifies
/// instead of thread spawns — cheap enough to run once per simulation
/// window (the parallel engine fires thousands of rounds per run), while
/// parallel_sweep uses one round for a whole sweep.
///
/// Threads persist across rounds, so thread-local state (the message pool)
/// warms up once and stays warm.
class worker_pool {
 public:
  /// `threads` total workers (>= 1); `threads - 1` helpers are spawned.
  explicit worker_pool(std::size_t threads);
  ~worker_pool();

  worker_pool(const worker_pool&) = delete;
  worker_pool& operator=(const worker_pool&) = delete;

  std::size_t size() const noexcept { return threads_; }

  /// Runs fn(worker) for every worker in [0, size()), the caller executing
  /// index 0, and returns when all of them finished.  If any worker threw,
  /// the first exception (by completion order) is rethrown here after the
  /// join — the others' work still ran to whatever point it reached.
  void run(const std::function<void(std::size_t)>& fn);

 private:
  void helper_loop(std::size_t worker);

  std::size_t threads_;
  std::vector<std::thread> helpers_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t running_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

/// What a sweep did, for telemetry/bench reporting.
struct sweep_result {
  std::size_t jobs = 0;     ///< jobs requested
  std::size_t workers = 0;  ///< threads actually used
  /// Jobs whose function ran to completion.  Equal to `jobs` on success;
  /// after a failure, jobs the fail-fast shutdown abandoned (and the
  /// throwing job itself) are in jobs_skipped instead — `jobs` alone used
  /// to claim a full sweep even when most of it never ran.
  std::size_t jobs_completed = 0;
  std::size_t jobs_skipped = 0;
  double wall_ms = 0.0;     ///< wall time of the whole fan-out
  /// Aggregate events/sec across the sweep (sum of per-job event counts
  /// divided by wall time) when the caller reported events; 0 otherwise.
  double events_per_sec = 0.0;
};

/// Runs `fn(job, worker)` for every job in [0, job_count), fanned across up
/// to `max_workers` threads (0 = std::thread::hardware_concurrency, min 1).
/// Blocks until every job finished.  Jobs are claimed from a shared atomic
/// counter, so long and short jobs balance automatically.
///
/// Exceptions: a throwing job terminates the sweep with the first exception
/// rethrown on the calling thread after all workers joined (remaining jobs
/// may or may not have run) — matching the fail-fast behaviour of a serial
/// loop closely enough for tests and benches.  Because the result object
/// cannot be returned on the exception path, pass `out` to still receive
/// the completion accounting (jobs_completed / jobs_skipped): it is filled
/// right before the rethrow.
sweep_result parallel_sweep(
    std::size_t job_count,
    const std::function<void(std::size_t job, std::size_t worker)>& fn,
    std::size_t max_workers = 0, sweep_result* out = nullptr);

// Merging a finished sweep into the metrics registry lives on the telemetry
// side (telemetry::record_sweep in telemetry/metrics.h): telemetry already
// depends on sim, never the reverse.

}  // namespace asyncrd::sim
