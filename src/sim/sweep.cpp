#include "sim/sweep.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace asyncrd::sim {

sweep_result parallel_sweep(
    std::size_t job_count,
    const std::function<void(std::size_t job, std::size_t worker)>& fn,
    std::size_t max_workers, sweep_result* out) {
  sweep_result result;
  result.jobs = job_count;
  if (job_count == 0) {
    if (out != nullptr) *out = result;
    return result;
  }

  std::size_t workers = max_workers;
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1 : hw;
  }
  if (workers > job_count) workers = job_count;
  result.workers = workers;

  const auto start = std::chrono::steady_clock::now();

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  const auto worker_loop = [&](std::size_t worker) {
    for (;;) {
      const std::size_t job = next.fetch_add(1, std::memory_order_relaxed);
      if (job >= job_count || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(job, worker);
        completed.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (first_error == nullptr) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (workers == 1) {
    // Serial fast path: no thread spawn, exceptions propagate directly —
    // and a debugger sees the job frames on the calling thread.
    worker_loop(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
      pool.emplace_back(worker_loop, w);
    for (std::thread& th : pool) th.join();
  }

  const auto elapsed = std::chrono::steady_clock::now() - start;
  result.wall_ms = std::chrono::duration<double, std::milli>(elapsed).count();
  result.jobs_completed = completed.load(std::memory_order_relaxed);
  result.jobs_skipped = job_count - result.jobs_completed;
  if (out != nullptr) *out = result;
  if (first_error != nullptr) std::rethrow_exception(first_error);
  return result;
}

}  // namespace asyncrd::sim
