#include "sim/sweep.h"

#include <atomic>
#include <chrono>
#include <utility>

namespace asyncrd::sim {

worker_pool::worker_pool(std::size_t threads)
    : threads_(threads == 0 ? 1 : threads) {
  helpers_.reserve(threads_ - 1);
  for (std::size_t w = 1; w < threads_; ++w)
    helpers_.emplace_back(&worker_pool::helper_loop, this, w);
}

worker_pool::~worker_pool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& th : helpers_) th.join();
}

void worker_pool::helper_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      fn = fn_;
    }
    try {
      (*fn)(worker);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    bool last;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      last = --running_ == 0;
    }
    if (last) done_cv_.notify_all();
  }
}

void worker_pool::run(const std::function<void(std::size_t)>& fn) {
  if (threads_ == 1) {
    fn(0);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    running_ = threads_ - 1;
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  std::exception_ptr caller_error;
  try {
    fn(0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return running_ == 0; });
    if (first_error_ == nullptr) first_error_ = caller_error;
    if (first_error_ != nullptr) {
      std::exception_ptr err = std::exchange(first_error_, nullptr);
      lock.unlock();
      std::rethrow_exception(err);
    }
  }
}

sweep_result parallel_sweep(
    std::size_t job_count,
    const std::function<void(std::size_t job, std::size_t worker)>& fn,
    std::size_t max_workers, sweep_result* out) {
  sweep_result result;
  result.jobs = job_count;
  if (job_count == 0) {
    if (out != nullptr) *out = result;
    return result;
  }

  std::size_t workers = max_workers;
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1 : hw;
  }
  if (workers > job_count) workers = job_count;
  result.workers = workers;

  const auto start = std::chrono::steady_clock::now();

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  const auto worker_loop = [&](std::size_t worker) {
    for (;;) {
      const std::size_t job = next.fetch_add(1, std::memory_order_relaxed);
      if (job >= job_count || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(job, worker);
        completed.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (first_error == nullptr) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (workers == 1) {
    // Serial fast path: no thread spawn, exceptions propagate directly —
    // and a debugger sees the job frames on the calling thread.
    worker_loop(0);
  } else {
    // One fork/join round over a fresh pool; jobs balance through the
    // shared claim counter.  worker_loop never throws (it records into
    // first_error itself), so pool.run's own rethrow path stays idle.
    worker_pool pool(workers);
    pool.run(worker_loop);
  }

  const auto elapsed = std::chrono::steady_clock::now() - start;
  result.wall_ms = std::chrono::duration<double, std::milli>(elapsed).count();
  result.jobs_completed = completed.load(std::memory_order_relaxed);
  result.jobs_skipped = job_count - result.jobs_completed;
  if (out != nullptr) *out = result;
  if (first_error != nullptr) std::rethrow_exception(first_error);
  return result;
}

}  // namespace asyncrd::sim
