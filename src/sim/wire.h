// Compact binary wire framing for simulator messages (ROADMAP item 5).
//
// A frame is: one header byte (wire::wire_bit | inner dispatch_tag), then
// the payload the protocol's codec table wrote for that tag — varint scalar
// fields and sorted-id-set payloads encoded as varint *deltas*.  The frame
// is the unit the network accounts under `wire.bytes_sent`, so every byte a
// socket backend would put on the wire is in it, including the header.
//
// Varints are LEB128: 7 payload bits per byte, least-significant group
// first, high bit set on every byte except the last.  An id set with ids
// a1 < a2 < ... < ak is encoded as
//
//   varint(k)  varint(a1)  varint(a2-a1) ... varint(ak-a(k-1))
//
// with every delta >= 1 (a zero delta, a truncated varint, or an id-sum
// overflow makes the frame malformed and the decoder throws decode_error).
// Decoding is zero-copy: id_set_view validates the byte range once at parse
// time and then iterates the deltas in place — no vector materialization on
// the delivery path.
//
// This layer is protocol-agnostic: it knows bytes, varints, and delta sets.
// The message vocabulary registers per-tag encoders in a wire_codec table
// (core/messages.h builds the table for the paper's 13 message types) and
// the network applies it at the send choke point.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "sim/message.h"

namespace asyncrd::sim::wire {

/// Set on the dispatch_tag of every encoded frame (and of wire_msg itself):
/// header byte = wire_bit | inner tag.  Inner tags are < 0x80 by
/// construction (the codec table is indexed by them), so the bit is free.
inline constexpr std::uint8_t wire_bit = 0x80;

/// Appends v as a LEB128 varint (1..10 bytes).
inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Encoded size of v as a varint, in bytes.
inline std::size_t varint_size(std::uint64_t v) noexcept {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Appends a strictly-increasing id range as a delta set (grammar above).
/// Precondition: ids are strictly increasing; the decoder enforces it.
template <typename Range>
void put_id_set(std::vector<std::uint8_t>& out, const Range& ids) {
  put_varint(out, static_cast<std::uint64_t>(ids.size()));
  std::uint64_t prev = 0;
  bool first = true;
  for (const auto id : ids) {
    const std::uint64_t v = static_cast<std::uint64_t>(id);
    put_varint(out, first ? v : v - prev);
    prev = v;
    first = false;
  }
}

/// Thrown on any malformed frame: truncated varint, varint wider than 64
/// bits, unknown tag, zero delta, id overflow, or trailing garbage.
class decode_error : public std::runtime_error {
 public:
  explicit decode_error(const char* what) : std::runtime_error(what) {}
};

/// Bounds-checked cursor over an encoded frame.  All reads throw
/// decode_error instead of walking past the end.
class reader {
 public:
  reader(const std::uint8_t* data, std::size_t len) noexcept
      : p_(data), end_(data + len) {}

  bool done() const noexcept { return p_ == end_; }
  const std::uint8_t* pos() const noexcept { return p_; }
  std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }

  std::uint8_t byte() {
    if (p_ == end_) throw decode_error("wire: truncated frame");
    return *p_++;
  }

  std::uint64_t varint();

  /// Rejects frames with bytes after the last field.
  void expect_end() const {
    if (p_ != end_) throw decode_error("wire: trailing bytes after payload");
  }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

/// Zero-copy view of an encoded delta set.  parse() validates the whole
/// range up front (count, first id, strictly-positive deltas, no overflow),
/// so iteration afterwards is noexcept and does no bounds checks: the
/// iterator accumulates deltas in place as it walks the validated bytes.
class id_set_view {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::uint64_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const std::uint64_t*;
    using reference = std::uint64_t;

    iterator() noexcept = default;

    std::uint64_t operator*() const noexcept { return cur_; }

    iterator& operator++() noexcept {
      if (--left_ > 0) cur_ += read();
      return *this;
    }
    iterator operator++(int) noexcept {
      iterator t = *this;
      ++*this;
      return t;
    }

    /// Iterators into the same view compare by remaining count; the end
    /// iterator (and a default-constructed one) has left_ == 0.
    bool operator==(const iterator& o) const noexcept {
      return left_ == o.left_;
    }
    bool operator!=(const iterator& o) const noexcept { return !(*this == o); }

   private:
    friend class id_set_view;
    iterator(const std::uint8_t* p, std::size_t count) noexcept
        : p_(p), left_(count) {
      if (left_ > 0) cur_ = read();
    }

    // Unchecked varint read over bytes parse() already validated.
    std::uint64_t read() noexcept {
      std::uint64_t v = 0;
      unsigned shift = 0;
      std::uint8_t b;
      do {
        b = *p_++;
        v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
        shift += 7;
      } while ((b & 0x80) != 0);
      return v;
    }

    const std::uint8_t* p_ = nullptr;
    std::uint64_t cur_ = 0;
    std::size_t left_ = 0;
  };

  id_set_view() noexcept = default;

  /// Validates and consumes one delta set from r.  Throws decode_error on
  /// truncation, zero delta, or accumulated-id overflow.
  static id_set_view parse(reader& r);

  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  iterator begin() const noexcept { return iterator(data_, count_); }
  iterator end() const noexcept { return iterator(); }

 private:
  id_set_view(const std::uint8_t* data, std::size_t count) noexcept
      : data_(data), count_(count) {}

  const std::uint8_t* data_ = nullptr;  ///< first-id varint (validated)
  std::size_t count_ = 0;
};

}  // namespace asyncrd::sim::wire

namespace asyncrd::sim {

/// A message that carries its own encoded frame instead of struct fields —
/// what the message pool holds in wire mode for types the codec
/// materializes (wire_codec::materialize).  dispatch_tag is
/// wire::wire_bit | inner tag; the paper's bit accounting (type_name,
/// id/int/flag field counts) is captured from the inner message at encode
/// time so stats and traces are byte-identical with wire mode off.
///
/// The frame lives inline for small messages (the common case: every
/// fixed-field message fits) and spills to the size-classed message pool
/// for large id sets.
///
/// Requires the inner message's type_name() to return a pointer with static
/// storage duration (true for every core message: they return literals) —
/// the view outlives the encoded struct.
class wire_msg final : public message {
 public:
  wire_msg(const message& inner, const std::uint8_t* frame, std::size_t len);

  /// Frame received off a socket: there is no inner struct to borrow the
  /// bit accounting from, so the caller supplies the type name (static
  /// storage duration; core::wire::tag_name) and the field counts stay 0 —
  /// service-mode stats count frames and bytes, not paper bit fields.
  /// Precondition: len >= 1 and frame[0] has wire_bit set (callers validate
  /// the frame via the protocol codec before boxing it).
  wire_msg(const std::uint8_t* frame, std::size_t len, std::string_view name);
  ~wire_msg() override;

  wire_msg(const wire_msg&) = delete;
  wire_msg& operator=(const wire_msg&) = delete;

  /// Whole frame, header byte included.
  const std::uint8_t* data() const noexcept {
    return len_ > inline_capacity ? heap_ : inline_;
  }
  std::size_t size() const noexcept { return len_; }

  /// Payload after the header byte (what the codec's decoder parses).
  const std::uint8_t* payload() const noexcept { return data() + 1; }
  std::size_t payload_size() const noexcept { return len_ - 1; }

  std::uint8_t inner_tag() const noexcept {
    return dispatch_tag() & static_cast<std::uint8_t>(~wire::wire_bit);
  }

  std::string_view type_name() const noexcept override { return name_; }
  std::size_t id_fields() const noexcept override { return ids_; }
  std::size_t int_fields() const noexcept override { return ints_; }
  std::size_t flag_bits() const noexcept override { return flags_; }

 private:
  static constexpr std::size_t inline_capacity = 32;

  std::string_view name_;
  std::uint32_t ids_ = 0;
  std::uint32_t ints_ = 0;
  std::uint32_t flags_ = 0;
  std::uint32_t len_ = 0;
  union {
    std::uint8_t inline_[inline_capacity];
    std::uint8_t* heap_;
  };
};

/// Writes the full frame (header byte first) for one concrete message type.
using wire_encode_fn = void (*)(const message&, std::vector<std::uint8_t>&);

/// Per-protocol encoder table, indexed by inner dispatch_tag.  A null slot
/// means "no wire form" — the network passes such messages through as
/// structs, uncounted (foreign test messages keep working in wire mode).
///
/// `materialize[tag]` decides whether the encoded frame *replaces* the
/// struct in the simulation (the message pool then holds a wire_msg and the
/// receiver decodes zero-copy).  Every encoded type is counted under
/// wire.bytes_sent either way; materializing pays a wire_msg allocation, so
/// protocols set it only for types whose payload the frame shrinks —
/// id-set carriers, where one compact delta-set frame replaces the struct
/// plus its heap vectors.  For small fixed-field messages the struct is
/// already the minimal representation, and re-boxing a 7-byte frame into a
/// pooled object would *grow* the resident footprint it exists to shrink.
struct wire_codec {
  std::array<wire_encode_fn, 128> encode{};
  std::array<bool, 128> materialize{};
};

}  // namespace asyncrd::sim
