// The transport seam: the five operations the reliable-link ARQ layer (and
// anything else that sits between application sends and the wire) actually
// needs from its driver.  Carved out of sim::network so the same adapter
// code runs over two very different drivers:
//
//   * sim::network — virtual time, scheduler-chosen delays, deterministic
//     fault injection, byte-identical replay;
//   * net::udp_transport (src/net/) — real non-blocking UDP sockets, wall-
//     clock retransmit timers, a genuinely lossy loopback/LAN wire.
//
// The contract mirrors how the simulator behaves, because the ARQ layer was
// written against it:
//
//   now()                    monotone non-decreasing clock in abstract ticks
//                            (virtual time in sim, wall-clock ticks in net).
//   transport_send(f, t, m)  put one message on the wire, FIFO per ordered
//                            pair; the wire may drop or duplicate it.
//   app_deliver(t, f, m)     hand one application message to the
//                            destination endpoint, in order.  Only valid
//                            while the driver is delivering (sim: inside a
//                            delivery activation).
//   schedule_adapter_timer   fire link_adapter::on_timer(key) at
//                            now() + delay.  Timers are one-shot; a driver
//                            must guarantee that when a timer callback runs,
//                            now() equals the time it was scheduled for —
//                            the ARQ layer detects orphaned (superseded)
//                            timers by comparing now() against the deadline
//                            it stored at arm time.
//   link_seed()              stable seed for the adapter's deterministic
//                            jitter streams (the fault-plan seed in sim).
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "sim/message.h"
#include "sim/scheduler.h"

namespace asyncrd::sim {

class transport {
 public:
  virtual ~transport() = default;

  virtual sim_time now() const noexcept = 0;
  virtual void transport_send(node_id from, node_id to, message_ptr m) = 0;
  virtual void app_deliver(node_id to, node_id from,
                           const message_ptr& m) = 0;
  virtual void schedule_adapter_timer(sim_time delay, std::uint64_t key) = 0;
  virtual std::uint64_t link_seed() const noexcept = 0;
};

}  // namespace asyncrd::sim
