// Thread-local size-classed free-list pool behind sim::make_message.
//
// Size classes are 16-byte steps up to 512 bytes — every concrete message in
// the tree (a vtable pointer plus a handful of ids/integers, wrapped in a
// shared_ptr control block) lands in the first few classes.  Each class
// caches up to `max_cached` blocks; beyond that, frees go straight to the
// heap so a pathological burst cannot pin memory forever.
#include "sim/message.h"

#include <cstdlib>
#include <new>
#include <vector>

namespace asyncrd::sim::pool_detail {

namespace {

constexpr std::size_t class_step = 16;
constexpr std::size_t class_count = 32;  // largest pooled block: 512 bytes
constexpr std::size_t max_bytes = class_step * class_count;
constexpr std::size_t max_cached = 4096;  // per class, per thread

struct free_lists {
  std::vector<void*> cls[class_count];

  ~free_lists() {
    for (auto& list : cls)
      for (void* p : list) ::operator delete(p);
  }
};

free_lists& local() {
  thread_local free_lists lists;
  return lists;
}

/// Class index for a byte size (size must be in (0, max_bytes]).
std::size_t class_of(std::size_t bytes) noexcept {
  return (bytes - 1) / class_step;
}

}  // namespace

void* allocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (bytes > max_bytes) return ::operator new(bytes);
  auto& list = local().cls[class_of(bytes)];
  if (!list.empty()) {
    void* p = list.back();
    list.pop_back();
    return p;
  }
  // Allocate the class's full size so the block is reusable for any request
  // in the same class.
  return ::operator new((class_of(bytes) + 1) * class_step);
}

void deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
  if (bytes > max_bytes) {
    ::operator delete(p);
    return;
  }
  auto& list = local().cls[class_of(bytes)];
  if (list.size() >= max_cached) {
    ::operator delete(p);
    return;
  }
  try {
    list.push_back(p);
  } catch (...) {
    // Growing the free list itself failed (OOM): drop the block to the heap
    // rather than violating noexcept.
    ::operator delete(p);
  }
}

std::size_t cached_blocks() noexcept {
  std::size_t total = 0;
  for (const auto& list : local().cls) total += list.size();
  return total;
}

void trim() noexcept {
  for (auto& list : local().cls) {
    for (void* p : list) ::operator delete(p);
    list.clear();
  }
}

}  // namespace asyncrd::sim::pool_detail
