// Thread-local size-classed free-list pool behind sim::make_message.
//
// Size classes are 16-byte steps up to 512 bytes — every concrete message in
// the tree (a vtable pointer plus a handful of ids/integers, wrapped in a
// shared_ptr control block) lands in the first few classes.  Each class
// caches up to `max_cached` blocks and each *thread* caches at most
// `max_thread_bytes` across all classes.
//
// Cross-thread migration: a block freed on a different thread than it was
// allocated on lands in the freeing thread's cache.  Under the parallel
// engine that flow is systematically one-way — workers allocate message
// payloads during window phases, the coordinator frees them after barrier
// replay — so without a cap the coordinator's cache would grow without
// bound while the workers allocate fresh heap blocks forever.  Overflow
// therefore spills, in batches, to a global mutex-protected reclaim list,
// and a thread whose local class list misses refills from that list (again
// in batches) before touching operator new.  The lock is taken once per
// batch, not per block, so the serial hot path (send -> deliver -> drop on
// one thread) still never synchronizes.
#include "sim/message.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

namespace asyncrd::sim::pool_detail {

namespace {

constexpr std::size_t class_step = 16;
constexpr std::size_t class_count = 32;  // largest pooled block: 512 bytes
constexpr std::size_t max_bytes = class_step * class_count;
constexpr std::size_t max_cached = 4096;  // per class, per thread
/// Total bytes one thread may cache across all classes; overflow spills to
/// the global reclaim list.
constexpr std::size_t max_thread_bytes = std::size_t{1} << 20;  // 1 MiB
/// Blocks moved per lock acquisition (both directions).
constexpr std::size_t reclaim_batch = 64;
/// Per-class cap on the global reclaim list; beyond it blocks go to the
/// heap, so even a pathological producer/consumer split cannot pin memory.
constexpr std::size_t max_global_cached = 8192;

struct free_lists {
  std::vector<void*> cls[class_count];
  std::size_t bytes = 0;  ///< total bytes currently cached locally

  ~free_lists() {
    for (auto& list : cls)
      for (void* p : list) ::operator delete(p);
  }
};

free_lists& local() {
  thread_local free_lists lists;
  return lists;
}

/// Cross-thread reclaim list (see file comment).  Counters are cumulative
/// process-wide telemetry.
struct global_pool {
  std::mutex mu;
  std::vector<void*> cls[class_count];
  std::size_t blocks = 0;        ///< cached blocks across classes
  std::uint64_t donations = 0;   ///< blocks spilled thread -> global
  std::uint64_t grabs = 0;       ///< blocks refilled global -> thread
};

global_pool& global() {
  static global_pool pool;
  return pool;
}

/// Live-byte gauges: allocate charges the block's full charged size (class
/// size for pooled blocks, exact size above the largest class); deallocate
/// refunds it on whichever thread frees.  Process-wide relaxed atomics —
/// blocks migrate threads under the parallel engine, so per-thread gauges
/// would drift negative on the coordinator.  These count *live* blocks
/// handed to callers, not free-list inventory: exactly the message-footprint
/// number the struct-vs-wire bench comparison needs.
std::atomic<std::int64_t> live_bytes_{0};
std::atomic<std::int64_t> peak_bytes_{0};

void charge(std::size_t bytes) noexcept {
  const auto b = static_cast<std::int64_t>(bytes);
  const std::int64_t now =
      live_bytes_.fetch_add(b, std::memory_order_relaxed) + b;
  std::int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (now > peak && !peak_bytes_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void refund(std::size_t bytes) noexcept {
  live_bytes_.fetch_sub(static_cast<std::int64_t>(bytes),
                        std::memory_order_relaxed);
}

/// Class index for a byte size (size must be in (0, max_bytes]).
std::size_t class_of(std::size_t bytes) noexcept {
  return (bytes - 1) / class_step;
}

std::size_t class_bytes(std::size_t ci) noexcept {
  return (ci + 1) * class_step;
}

/// Spills `p` plus up to a batch of the local class list to the global
/// reclaim list (one lock).  Blocks beyond the global cap go to the heap.
void donate(free_lists& fl, std::size_t ci, void* p) noexcept {
  try {
    global_pool& g = global();
    const std::lock_guard<std::mutex> lock(g.mu);
    auto& gl = g.cls[ci];
    if (gl.size() >= max_global_cached) {
      ::operator delete(p);
      return;
    }
    gl.push_back(p);
    ++g.blocks;
    ++g.donations;
    auto& list = fl.cls[ci];
    const std::size_t cb = class_bytes(ci);
    std::size_t n = std::min(list.size(), reclaim_batch);
    while (n-- != 0 && gl.size() < max_global_cached) {
      gl.push_back(list.back());
      list.pop_back();
      fl.bytes -= cb;
      ++g.blocks;
      ++g.donations;
    }
  } catch (...) {
    // Lock or vector growth failed: drop to the heap rather than violating
    // noexcept.
    ::operator delete(p);
  }
}

}  // namespace

void* allocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (bytes > max_bytes) {
    void* p = ::operator new(bytes);
    charge(bytes);
    return p;
  }
  const std::size_t ci = class_of(bytes);
  charge(class_bytes(ci));
  free_lists& fl = local();
  auto& list = fl.cls[ci];
  if (!list.empty()) {
    void* p = list.back();
    list.pop_back();
    fl.bytes -= class_bytes(ci);
    return p;
  }
  // Local miss: batch-refill from the global reclaim list before paying for
  // operator new.
  global_pool& g = global();
  {
    const std::lock_guard<std::mutex> lock(g.mu);
    auto& gl = g.cls[ci];
    if (!gl.empty()) {
      std::size_t take = std::min(gl.size(), reclaim_batch);
      g.blocks -= take;
      g.grabs += take;
      void* ret = gl.back();
      gl.pop_back();
      --take;
      while (take-- != 0) {
        list.push_back(gl.back());  // push first: exception-safe transfer
        gl.pop_back();
        fl.bytes += class_bytes(ci);
      }
      return ret;
    }
  }
  // Allocate the class's full size so the block is reusable for any request
  // in the same class.
  return ::operator new(class_bytes(ci));
}

void deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
  if (bytes > max_bytes) {
    refund(bytes);
    ::operator delete(p);
    return;
  }
  const std::size_t ci = class_of(bytes);
  refund(class_bytes(ci));
  free_lists& fl = local();
  auto& list = fl.cls[ci];
  const std::size_t cb = class_bytes(ci);
  if (list.size() >= max_cached || fl.bytes + cb > max_thread_bytes) {
    donate(fl, ci, p);
    return;
  }
  try {
    list.push_back(p);
    fl.bytes += cb;
  } catch (...) {
    // Growing the free list itself failed (OOM): drop the block to the heap
    // rather than violating noexcept.
    ::operator delete(p);
  }
}

std::size_t cached_blocks() noexcept {
  std::size_t total = 0;
  for (const auto& list : local().cls) total += list.size();
  return total;
}

void trim() noexcept {
  free_lists& fl = local();
  for (auto& list : fl.cls) {
    for (void* p : list) ::operator delete(p);
    list.clear();
  }
  fl.bytes = 0;
}

void trim_global() noexcept {
  try {
    global_pool& g = global();
    const std::lock_guard<std::mutex> lock(g.mu);
    for (auto& list : g.cls) {
      for (void* p : list) ::operator delete(p);
      list.clear();
    }
    g.blocks = 0;
  } catch (...) {
    // Lock failure: leave the cache in place (it is still accounted).
  }
}

pool_stats stats() noexcept {
  pool_stats s;
  free_lists& fl = local();
  for (const auto& list : fl.cls) s.thread_cached_blocks += list.size();
  s.thread_cached_bytes = fl.bytes;
  try {
    global_pool& g = global();
    const std::lock_guard<std::mutex> lock(g.mu);
    s.global_cached_blocks = g.blocks;
    s.reclaim_donations = g.donations;
    s.reclaim_grabs = g.grabs;
  } catch (...) {
  }
  s.live_bytes = live_bytes_.load(std::memory_order_relaxed);
  s.peak_bytes = peak_bytes_.load(std::memory_order_relaxed);
  return s;
}

void reset_peak_bytes() noexcept {
  peak_bytes_.store(live_bytes_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
}

}  // namespace asyncrd::sim::pool_detail
