// Flight recorder: a fixed-size ring of the last K dispatched scheduler
// events, cheap enough to leave armed on production-sized runs.
//
// Each entry is a small POD — event kind, the endpoints, the message's
// one-byte dispatch tag (PR 3's byte-dispatch vocabulary, so no type-name
// string is touched on the hot path), virtual time, the activation id the
// event ran as, and its genealogy cause — recorded by network::dispatch with
// one branch and one struct store per event.  No allocation ever happens
// after construction.
//
// The point of the recorder is the postmortem: when a checker violation or a
// stall-watchdog trip aborts a run, the ring holds the K events leading up
// to it.  telemetry::write_flight_dump serializes it (with cause edges) as
// JSON and tools/trace_analyze --flight reads the dump back — the last
// moments of a sick run without paying full-trace cost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "sim/scheduler.h"

namespace asyncrd::sim {

/// One dispatched event.  `event_id` is the activation id the event ran as
/// (deliveries and wakes; `none` for timer events, which run between
/// activations), `cause` its genealogy parent — the same id space the causal
/// tracer uses, so dump entries link to each other while their parents are
/// still in the ring.
struct flight_entry {
  static constexpr std::uint64_t none = ~std::uint64_t{0};
  enum class kind : std::uint8_t { wake = 0, deliver = 1, timer = 2 };

  sim_time at = 0;
  std::uint64_t event_id = none;
  std::uint64_t cause = none;  ///< timer events: the adapter's timer key
  node_id a = invalid_node;    ///< wake: woken node; deliver: sender
  node_id b = invalid_node;    ///< deliver: receiver
  kind what = kind::wake;
  std::uint8_t tag = 0;        ///< deliver: message dispatch tag
};

class flight_recorder {
 public:
  explicit flight_recorder(std::size_t capacity = 4096)
      : ring_(capacity == 0 ? 1 : capacity) {}

  std::size_t capacity() const noexcept { return ring_.size(); }
  std::size_t size() const noexcept { return size_; }
  /// Events that fell off the back of the ring.
  std::uint64_t dropped() const noexcept { return dropped_; }

  void record(const flight_entry& e) noexcept {
    ring_[head_] = e;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (size_ < ring_.size())
      ++size_;
    else
      ++dropped_;
  }

  /// i-th retained entry, oldest first (0 <= i < size()).
  const flight_entry& at(std::size_t i) const noexcept {
    const std::size_t start = size_ < ring_.size() ? 0 : head_;
    std::size_t idx = start + i;
    if (idx >= ring_.size()) idx -= ring_.size();
    return ring_[idx];
  }

  /// Applies `f` to each retained entry, oldest first.
  template <typename F>
  void visit(F&& f) const {
    for (std::size_t i = 0; i < size_; ++i) f(at(i));
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
  }

 private:
  std::vector<flight_entry> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace asyncrd::sim
