#include "sim/event_log.h"

#include <ostream>

namespace asyncrd::sim {

void event_log::on_wake(sim_time t, node_id v) {
  push({logged_event::kind::wake, t, invalid_node, v, {}});
}

void event_log::on_send(sim_time t, node_id from, node_id to,
                        const message& m) {
  push({logged_event::kind::send, t, from, to, std::string(m.type_name())});
}

void event_log::on_deliver(sim_time t, node_id from, node_id to,
                           const message& m) {
  push({logged_event::kind::deliver, t, from, to,
        std::string(m.type_name())});
}

void event_log::push(logged_event ev) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

std::vector<logged_event> event_log::of_kind(logged_event::kind k) const {
  std::vector<logged_event> out;
  for (const auto& e : events_)
    if (e.what == k) out.push_back(e);
  return out;
}

std::vector<logged_event> event_log::touching(node_id v) const {
  std::vector<logged_event> out;
  for (const auto& e : events_)
    if (e.from == v || e.to == v) out.push_back(e);
  return out;
}

void event_log::render(std::ostream& os, std::size_t max_lines) const {
  std::size_t lines = 0;
  for (const auto& e : events_) {
    if (lines++ >= max_lines) {
      os << "... (" << events_.size() - max_lines << " more events)\n";
      return;
    }
    os << "t=" << e.at << ' ';
    switch (e.what) {
      case logged_event::kind::wake:
        os << "wake    " << e.to;
        break;
      case logged_event::kind::send:
        os << "send    " << e.from << " -> " << e.to << ' ' << e.type;
        break;
      case logged_event::kind::deliver:
        os << "deliver " << e.from << " -> " << e.to << ' ' << e.type;
        break;
    }
    os << '\n';
  }
  if (dropped_ > 0) os << "(" << dropped_ << " events dropped at capacity)\n";
}

void event_log::clear() {
  events_.clear();
  dropped_ = 0;
}

}  // namespace asyncrd::sim
