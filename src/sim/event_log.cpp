#include "sim/event_log.h"

#include <ostream>

namespace asyncrd::sim {

void event_log::on_wake(sim_time t, node_id v) {
  push({logged_event::kind::wake, t, invalid_node, v, {}});
}

void event_log::on_send(sim_time t, node_id from, node_id to,
                        const message& m) {
  push({logged_event::kind::send, t, from, to, std::string(m.type_name())});
}

void event_log::on_deliver(sim_time t, node_id from, node_id to,
                           const message& m) {
  push({logged_event::kind::deliver, t, from, to,
        std::string(m.type_name())});
}

void event_log::push(logged_event ev) {
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (events_.size() < capacity_) {
    events_.push_back(std::move(ev));
    return;
  }
  // Full: overwrite the oldest event and advance the ring start.
  events_[start_] = std::move(ev);
  start_ = (start_ + 1) % capacity_;
  ++dropped_;
}

std::vector<logged_event> event_log::events() const {
  std::vector<logged_event> out;
  out.reserve(events_.size());
  visit([&](const logged_event& e) { out.push_back(e); });
  return out;
}

std::size_t event_log::count_of_kind(logged_event::kind k) const {
  std::size_t n = 0;
  visit([&](const logged_event& e) {
    if (e.what == k) ++n;
  });
  return n;
}

std::size_t event_log::count_touching(node_id v) const {
  std::size_t n = 0;
  visit([&](const logged_event& e) {
    if (e.from == v || e.to == v) ++n;
  });
  return n;
}

std::vector<logged_event> event_log::of_kind(logged_event::kind k) const {
  std::vector<logged_event> out;
  visit([&](const logged_event& e) {
    if (e.what == k) out.push_back(e);
  });
  return out;
}

std::vector<logged_event> event_log::touching(node_id v) const {
  std::vector<logged_event> out;
  visit([&](const logged_event& e) {
    if (e.from == v || e.to == v) out.push_back(e);
  });
  return out;
}

void event_log::render(std::ostream& os, std::size_t max_lines) const {
  if (dropped_ > 0)
    os << "(" << dropped_ << " older events dropped at capacity)\n";
  std::size_t lines = 0;
  bool truncated = false;
  visit([&](const logged_event& e) -> bool {
    if (lines >= max_lines) {
      truncated = true;
      return false;  // stop the ring walk; the footer counts the rest
    }
    ++lines;
    os << "t=" << e.at << ' ';
    switch (e.what) {
      case logged_event::kind::wake:
        os << "wake    " << e.to;
        break;
      case logged_event::kind::send:
        os << "send    " << e.from << " -> " << e.to << ' ' << e.type;
        break;
      case logged_event::kind::deliver:
        os << "deliver " << e.from << " -> " << e.to << ' ' << e.type;
        break;
    }
    os << '\n';
    return true;
  });
  if (truncated)
    os << "... (" << events_.size() - max_lines << " more events)\n";
}

void event_log::clear() {
  events_.clear();
  start_ = 0;
  dropped_ = 0;
}

}  // namespace asyncrd::sim
