// Message base class for the asynchronous message-passing substrate.
//
// The paper measures algorithms by (a) total number of messages and (b)
// total number of bits.  Ids cost O(log n) bits each; integer fields such as
// phase counters or requested-count arguments are also O(log n) bits (phases
// never exceed log n, counts never exceed n + 1).  Every concrete message
// reports how many id-sized fields, integer fields, and flag bits it
// carries; sim::stats converts that to a bit count using the actual
// ceil(log2 n) of the network under test.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>

namespace asyncrd::sim {

/// Abstract message.  Concrete messages are immutable value objects created
/// once and shared by pointer; the simulator never copies payloads.
class message {
 public:
  virtual ~message() = default;

  /// Stable name used for per-type accounting (e.g. "search", "release").
  virtual std::string_view type_name() const noexcept = 0;

  /// Number of node-id payload fields (each charged ceil(log2 n) bits).
  virtual std::size_t id_fields() const noexcept = 0;

  /// Number of integer payload fields (phase, count, ...), also O(log n).
  virtual std::size_t int_fields() const noexcept { return 0; }

  /// Number of constant-size flag bits (booleans, merge/abort tags, ...).
  virtual std::size_t flag_bits() const noexcept { return 0; }

  /// Total size in bits given the id width of the network under test.
  /// header_bits models the constant-size message-type tag.
  std::size_t bits(std::size_t id_bits) const noexcept {
    return (id_fields() + int_fields()) * id_bits + flag_bits() + header_bits;
  }

  static constexpr std::size_t header_bits = 4;
};

using message_ptr = std::shared_ptr<const message>;

/// Convenience factory: make_message<search_msg>(args...).
template <typename M, typename... Args>
message_ptr make_message(Args&&... args) {
  return std::make_shared<const M>(std::forward<Args>(args)...);
}

}  // namespace asyncrd::sim
