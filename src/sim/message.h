// Message base class for the asynchronous message-passing substrate.
//
// The paper measures algorithms by (a) total number of messages and (b)
// total number of bits.  Ids cost O(log n) bits each; integer fields such as
// phase counters or requested-count arguments are also O(log n) bits (phases
// never exceed log n, counts never exceed n + 1).  Every concrete message
// reports how many id-sized fields, integer fields, and flag bits it
// carries; sim::stats converts that to a bit count using the actual
// ceil(log2 n) of the network under test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

namespace asyncrd::sim {

/// Abstract message.  Concrete messages are immutable value objects created
/// once and shared by pointer; the simulator never copies payloads.
class message {
 public:
  virtual ~message() = default;

  /// Cheap dispatch tag for protocol layers whose receive path would
  /// otherwise chain dynamic_casts per delivery.  0 means untagged (the
  /// receiver falls back to whatever general dispatch it has); a protocol
  /// layer reserves its own nonzero values (core/messages.h) and may
  /// static_cast after switching on the tag.
  std::uint8_t dispatch_tag() const noexcept { return tag_; }

  /// Stable name used for per-type accounting (e.g. "search", "release").
  virtual std::string_view type_name() const noexcept = 0;

  /// Number of node-id payload fields (each charged ceil(log2 n) bits).
  virtual std::size_t id_fields() const noexcept = 0;

  /// Number of integer payload fields (phase, count, ...), also O(log n).
  virtual std::size_t int_fields() const noexcept { return 0; }

  /// Number of constant-size flag bits (booleans, merge/abort tags, ...).
  virtual std::size_t flag_bits() const noexcept { return 0; }

  /// Total size in bits given the id width of the network under test.
  /// header_bits models the constant-size message-type tag.
  std::size_t bits(std::size_t id_bits) const noexcept {
    return (id_fields() + int_fields()) * id_bits + flag_bits() + header_bits;
  }

  static constexpr std::size_t header_bits = 4;

 protected:
  message() noexcept = default;
  explicit message(std::uint8_t tag) noexcept : tag_(tag) {}

 private:
  std::uint8_t tag_ = 0;
};

using message_ptr = std::shared_ptr<const message>;

// --- pooled message allocation --------------------------------------------
//
// One heap allocation per send used to dominate the simulator's hot path
// (make_shared -> operator new for every message).  make_message now routes
// through a size-classed free-list pool: allocate_shared places control
// block and payload in one block, and freed blocks are recycled instead of
// returned to the heap.  The common case (send -> deliver -> drop, nothing
// parked) becomes two pointer pops/pushes on a thread-local free list.
//
// The pool is thread-local, so parallel_sweep workers need no coordination;
// a block freed on a different thread than it was allocated on simply
// migrates to the freeing thread's pool (the memory itself is ordinary
// operator-new memory, owned by no thread).

namespace pool_detail {

/// Allocates `bytes` from the calling thread's pool (falls back to
/// operator new for sizes above the largest size class).
void* allocate(std::size_t bytes);

/// Returns a block to the calling thread's pool (or the heap).
void deallocate(void* p, std::size_t bytes) noexcept;

/// Blocks currently cached by the calling thread's pool (tests/telemetry).
std::size_t cached_blocks() noexcept;

/// Frees every cached block of the calling thread back to the heap.
void trim() noexcept;

/// Frees every block cached on the cross-thread reclaim list.
void trim_global() noexcept;

/// Pool occupancy and cross-thread migration counters.  The thread_*
/// fields describe the calling thread's cache; the reclaim counters and
/// the live/peak gauges are process-wide (telemetry::record_pool exports
/// them).
struct pool_stats {
  std::size_t thread_cached_blocks = 0;
  std::size_t thread_cached_bytes = 0;
  std::size_t global_cached_blocks = 0;
  std::uint64_t reclaim_donations = 0;  ///< blocks spilled thread -> global
  std::uint64_t reclaim_grabs = 0;      ///< blocks refilled global -> thread
  /// Bytes currently resident in live pool blocks (allocated minus freed,
  /// charged at the block's full class size), across all threads.
  std::int64_t live_bytes = 0;
  /// High-water mark of live_bytes since the last reset_peak_bytes().
  std::int64_t peak_bytes = 0;
};

pool_stats stats() noexcept;

/// Restarts the live-byte high-water mark from the current level, so a
/// bench can measure one workload's footprint in isolation.
void reset_peak_bytes() noexcept;

}  // namespace pool_detail

/// Minimal allocator over the thread-local message pool, for
/// std::allocate_shared.  Stateless: all instances compare equal.
template <typename T>
struct pool_allocator {
  using value_type = T;

  pool_allocator() noexcept = default;
  template <typename U>
  pool_allocator(const pool_allocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(pool_detail::allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    pool_detail::deallocate(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const pool_allocator<U>&) const noexcept {
    return true;
  }
};

/// Convenience factory: make_message<search_msg>(args...).  Control block
/// and message share one pooled allocation.
template <typename M, typename... Args>
message_ptr make_message(Args&&... args) {
  return std::allocate_shared<const M>(pool_allocator<const M>{},
                                       std::forward<Args>(args)...);
}

}  // namespace asyncrd::sim
