#include "sim/scheduler.h"

#include <algorithm>
#include <cmath>

namespace asyncrd::sim {

double run_timing::events_per_sec() const noexcept {
  if (wall_ns == 0) return 0.0;
  return static_cast<double>(events) * 1e9 / static_cast<double>(wall_ns);
}

random_delay_scheduler::random_delay_scheduler(std::uint64_t seed,
                                               sim_time min_delay,
                                               sim_time max_delay)
    : rng_(seed),
      min_delay_(std::max<sim_time>(1, min_delay)),
      max_delay_(std::max(max_delay, min_delay_)) {}

sim_time random_delay_scheduler::delay(node_id, node_id, const message&) {
  return rng_.between(min_delay_, max_delay_);
}

heavy_tail_delay_scheduler::heavy_tail_delay_scheduler(std::uint64_t seed,
                                                       double tail_alpha,
                                                       sim_time cap)
    : rng_(seed),
      tail_alpha_(std::max(0.1, tail_alpha)),
      cap_(std::max<sim_time>(2, cap)) {}

sim_time heavy_tail_delay_scheduler::delay(node_id, node_id, const message&) {
  // Inverse-transform sampling of a Pareto tail: d = 1 / U^(1/alpha).
  const double u = std::max(rng_.unit(), 1e-12);
  const double d = std::pow(1.0 / u, 1.0 / tail_alpha_);
  const double capped = std::min(d, static_cast<double>(cap_));
  return std::max<sim_time>(1, static_cast<sim_time>(capped));
}

}  // namespace asyncrd::sim
