// Bounded exhaustive interleaving exploration — a stateless model checker
// for protocols running on the simulator.
//
// The asynchronous model's adversary chooses, at every moment, which ready
// event fires next: any pending wake, or the head of any non-empty FIFO
// channel.  explore_interleavings() enumerates EVERY such schedule for a
// (small) system by depth-first search over choice sequences, rebuilding
// the system from scratch for each prefix (states are not snapshottable;
// executions are deterministic given the choice sequence, so replay is
// exact).  At every quiescent leaf the caller's check runs.
//
// Exhaustiveness is exponential: use 2-4 node systems.  The limits struct
// bounds the search; result.complete says whether every schedule was
// covered.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/network.h"

namespace asyncrd::sim {

struct explore_limits {
  std::uint64_t max_executions = 2'000'000;
  std::size_t max_depth = 4'096;
};

struct explore_result {
  std::uint64_t executions = 0;   ///< quiescent leaves checked
  std::uint64_t steps = 0;        ///< total events dispatched across replays
  bool complete = true;           ///< false iff a limit truncated the search
  std::vector<std::string> violations;  ///< first few check failures
  bool ok() const noexcept { return violations.empty(); }
};

/// `reset` rebuilds the system under test and returns its network, already
/// in manual mode with the initial wakes pending (the returned pointer is
/// borrowed; the callback owns the system and must keep it alive until the
/// next reset call).  `check` is called at each quiescent leaf and returns
/// an empty string when the state is correct.
explore_result explore_interleavings(
    const std::function<network*()>& reset,
    const std::function<std::string()>& check,
    const explore_limits& limits = {});

}  // namespace asyncrd::sim
