#include "sim/profiler.h"

#include <chrono>

namespace asyncrd::sim {

namespace {

/// Measures the tick rate against steady_clock over a short spin.  Run
/// once (static init of the cached value) — report-time only, never on the
/// hot path.
double calibrate_ticks_per_ns() noexcept {
#if defined(__x86_64__) || defined(__i386__) || defined(__aarch64__)
  using clock = std::chrono::steady_clock;
  // Two samples ~2ms apart; constant-rate counters (invariant TSC, the
  // AArch64 virtual counter) make this accurate to well under a percent,
  // which is plenty for attribution shares.
  const std::uint64_t t0 = profile_ticks();
  const auto c0 = clock::now();
  while (clock::now() - c0 < std::chrono::milliseconds(2)) {
  }
  const std::uint64_t t1 = profile_ticks();
  const auto c1 = clock::now();
  const double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(c1 - c0).count());
  if (ns <= 0.0 || t1 <= t0) return 1.0;
  return static_cast<double>(t1 - t0) / ns;
#else
  return 1.0;  // profile_ticks already returns steady_clock nanoseconds
#endif
}

}  // namespace

double profile_ticks_per_ns() noexcept {
  static const double rate = calibrate_ticks_per_ns();
  return rate;
}

const char* profile_phase_name(cost_profiler::phase p) noexcept {
  switch (p) {
    case cost_profiler::phase::queue_pop: return "queue_pop";
    case cost_profiler::phase::fault_rule: return "fault_rule";
    case cost_profiler::phase::arq: return "arq";
    case cost_profiler::phase::observers: return "observers";
    case cost_profiler::phase::probes: return "probes";
    case cost_profiler::phase::wake: return "wake";
  }
  return "?";
}

}  // namespace asyncrd::sim
