// Reliable-delivery adapter: rebuilds the paper's reliable-FIFO contract
// (§1.2) on top of a lossy chaos transport (sim/network.h fault_plan).
//
// Classic ARQ, specialized to the simulator's structural guarantees:
//   * sender side: every application message gets a per-ordered-channel
//     sequence number and rides in an rl.data envelope; unacked envelopes
//     are retransmitted wholesale when a timer fires, with exponential
//     backoff (reset on ack progress) capped at rto_max;
//   * receiver side: cumulative acks (next expected seq), duplicate
//     suppression, and an out-of-order buffer — gaps arise only from drops
//     and duplicates arise only from retransmission/duplication, because
//     the underlying wire is still FIFO per channel (structural);
//   * in-order release: buffered messages are handed to the destination
//     process via network::app_deliver inside the envelope's delivery
//     activation, so causal tracing and observer semantics stay coherent.
//
// The algorithms above run unmodified: context::send detours through
// app_send, and on_message sees exactly the sequence of application
// messages the reliable model promises.  Observers and sim::stats account
// the transport level (envelopes, retransmissions, acks) — the overhead
// bench_chaos_overhead measures.
//
// Termination: a timer firing with nothing unacked does not re-arm, acks
// are triggered by (re)transmitted data only, and every envelope is
// eventually delivered with probability 1 under drop < 1.  Retransmit
// deadlines carry deterministic per-channel jitter: without it, a capped
// rto that is a multiple of the outage period phase-locks every retry
// into the blackout window and the channel livelocks.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/flat_hash.h"
#include "common/ids.h"
#include "common/rng.h"
#include "sim/message.h"
#include "sim/network.h"

namespace asyncrd::sim {

/// Dispatch tags for the reliable-link envelopes.  Chosen far above the
/// core vocabulary (core/messages.h uses 1..13) so a process handed a stray
/// envelope would treat it as foreign rather than misparse it.
inline constexpr std::uint8_t rl_data_tag = 0xE7;
inline constexpr std::uint8_t rl_ack_tag = 0xE8;

/// Envelope carrying one application message plus its channel sequence
/// number.  Bit accounting: the inner message's payload plus one integer
/// field for the sequence number — the per-message reliability overhead.
struct rl_data_msg final : message {
  rl_data_msg(message_ptr m, std::uint64_t s)
      : message(rl_data_tag), inner(std::move(m)), seq(s) {}
  message_ptr inner;
  std::uint64_t seq;

  std::string_view type_name() const noexcept override { return "rl.data"; }
  std::size_t id_fields() const noexcept override {
    return inner->id_fields();
  }
  std::size_t int_fields() const noexcept override {
    return inner->int_fields() + 1;
  }
  std::size_t flag_bits() const noexcept override {
    return inner->flag_bits();
  }
};

/// Cumulative acknowledgement: "I have received everything below `ack` in
/// order".  Sent for every arriving rl.data (including duplicates, which is
/// what lets a sender whose acks were lost make progress).
struct rl_ack_msg final : message {
  explicit rl_ack_msg(std::uint64_t a) : message(rl_ack_tag), ack(a) {}
  std::uint64_t ack;

  std::string_view type_name() const noexcept override { return "rl.ack"; }
  std::size_t id_fields() const noexcept override { return 0; }
  std::size_t int_fields() const noexcept override { return 1; }
};

struct reliable_link_config {
  /// First retransmit timeout.  Should comfortably exceed the scheduler's
  /// typical round trip (data delay + ack delay), or healthy traffic
  /// triggers spurious retransmissions — the default covers a full
  /// random_delay_scheduler round trip (2 x 64) with room to spare.
  sim_time rto_initial = 256;
  /// Exponential backoff cap.
  sim_time rto_max = 16384;
  /// Jitter retransmit deadlines (rto + uniform[0, rto/2]).  On by default
  /// — disabling it re-creates the phase-locked-retransmit livelock (a
  /// capped rto resonating with a periodic outage window) and exists so
  /// tests can inject that livelock for the stall watchdog to catch.
  bool retransmit_jitter = true;
};

/// Adapter-level accounting (chaos counters in the run report).
struct reliable_link_stats {
  std::uint64_t data_sent = 0;        ///< first transmissions of envelopes
  std::uint64_t retransmits = 0;      ///< envelopes re-put on the wire
  std::uint64_t acks_sent = 0;        ///< cumulative acks emitted
  std::uint64_t dup_suppressed = 0;   ///< duplicate envelopes discarded
  std::uint64_t buffered_ooo = 0;     ///< envelopes parked out of order
  std::uint64_t timer_fires = 0;      ///< retransmit timers that fired live
  std::uint64_t rto_backoffs = 0;     ///< times the timeout was doubled
  std::uint64_t max_rto = 0;          ///< largest timeout reached
};

class reliable_link_layer final : public link_adapter {
 public:
  /// The adapter talks to its driver exclusively through the transport seam
  /// (sim/transport.h): sim::network in simulation, net::udp_transport over
  /// real sockets.  Same ARQ state machine, same jitter streams either way.
  explicit reliable_link_layer(transport& net, reliable_link_config cfg = {})
      : net_(&net), cfg_(cfg) {}

  reliable_link_layer(const reliable_link_layer&) = delete;
  reliable_link_layer& operator=(const reliable_link_layer&) = delete;

  /// Assembled by value: receive-side counters (acks, duplicates, OOO
  /// parks) live per receiver so the parallel engine's worker shards never
  /// contend on them, and are summed here.
  reliable_link_stats stats() const noexcept;
  const reliable_link_config& config() const noexcept { return cfg_; }

  /// True iff every sent envelope has been cumulatively acked (the protocol
  /// is drained; asserted by tests after a completed run).
  bool all_acked() const noexcept;

  /// Total un-acked envelopes across all channels — the ARQ retransmit
  /// backlog.  Maintained incrementally (O(1) read) because health probes
  /// read it every sample: nonzero outstanding with an empty wire is
  /// exactly the pure-livelock signature the stall watchdog keys on.
  std::uint64_t outstanding() const noexcept { return outstanding_; }

  /// Ordered channels with at least one un-acked envelope (the count of
  /// outstanding ranges).  Incrementally maintained like outstanding().
  std::uint64_t backlogged_channels() const noexcept { return backlogged_; }

  // link_adapter interface (called by the network).
  void app_send(node_id from, node_id to, message_ptr m) override;
  void transport_deliver(node_id from, node_id to,
                         const message_ptr& m) override;
  void on_timer(std::uint64_t key) override;

  // Sharded-execution contract.  Data envelopes only touch the destination
  // channel's receive state (owned by the destination's shard) and so run
  // in-window; acks mutate the *sender's* ARQ state and jitter stream and
  // must replay serially at the barrier.
  bool deliver_in_window(const message& m) const override {
    return m.dispatch_tag() != rl_ack_tag;
  }
  /// Pre-creates the receive state for a new ordered channel so in-window
  /// handle_data never inserts into the shared receiver table.
  void prepare_channel(node_id from, node_id to) override;

 private:
  /// Sender half of one ordered channel (from, to).
  struct sender_state {
    node_id from = invalid_node;
    node_id to = invalid_node;
    std::uint64_t next_seq = 0;  ///< next sequence number to assign
    std::uint64_t base = 0;      ///< lowest unacked sequence number
    /// Envelopes sent but not yet cumulatively acked, in seq order.
    std::deque<message_ptr> unacked;
    sim_time rto = 0;            ///< current retransmit timeout
    /// A pending timer is live iff it fires at exactly this deadline; acks
    /// and backoffs move the deadline, orphaning superseded timer events.
    sim_time deadline = 0;
    /// Deterministic jitter stream for retransmit deadlines (seeded from
    /// the fault plan + channel endpoints, so runs replay bit for bit).
    rng jitter{0};
  };

  /// Receiver half of one ordered channel (from, to).  Everything here —
  /// counters included — is touched only by the destination node's shard
  /// under the parallel engine (or serially otherwise).
  struct receiver_state {
    std::uint64_t expected = 0;  ///< next in-order sequence number
    std::uint64_t acks_sent = 0;
    std::uint64_t dup_suppressed = 0;
    std::uint64_t buffered_ooo = 0;
    /// Out-of-order envelopes parked until the gap below them fills.
    /// std::map: drained in seq order, stays tiny (bounded by drop bursts).
    std::map<std::uint64_t, message_ptr> buffer;
  };

  sender_state& sender_for(node_id from, node_id to);
  receiver_state& receiver_for(node_id from, node_id to);
  void arm_timer(std::uint32_t index);
  void handle_data(node_id from, node_id to, const rl_data_msg& env);
  void handle_ack(node_id from, node_id to, const rl_ack_msg& ack);

  static std::uint64_t pack(node_id a, node_id b) noexcept {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  transport* net_;
  reliable_link_config cfg_;
  reliable_link_stats stats_;
  std::uint64_t outstanding_ = 0;  ///< sum of unacked.size() over senders
  std::uint64_t backlogged_ = 0;   ///< senders with unacked non-empty
  flat_u64_map sender_index_;    ///< pack(from, to) -> senders_ index
  std::vector<sender_state> senders_;
  flat_u64_map receiver_index_;  ///< pack(from, to) -> receivers_ index
  std::vector<receiver_state> receivers_;
};

}  // namespace asyncrd::sim
