#include "sim/explore.h"

namespace asyncrd::sim {

explore_result explore_interleavings(
    const std::function<network*()>& reset,
    const std::function<std::string()>& check,
    const explore_limits& limits) {
  explore_result result;
  std::vector<std::size_t> path;    // option index chosen at each depth
  std::vector<std::size_t> fanout;  // option count observed at each depth

  for (;;) {
    if (result.executions >= limits.max_executions) {
      result.complete = false;
      return result;
    }
    // Replay the current prefix on a fresh system (executions are
    // deterministic given the choice sequence, so replay is exact).
    network* net = reset();
    fanout.resize(path.size());
    for (std::size_t d = 0; d < path.size(); ++d) {
      const auto opts = net->manual_options();
      fanout[d] = opts.size();
      net->take_step(opts[path[d]]);
      ++result.steps;
    }
    // Extend greedily with first options until quiescence (or the depth
    // limit, which marks the search incomplete).
    bool truncated = false;
    for (;;) {
      const auto opts = net->manual_options();
      if (opts.empty()) break;
      if (path.size() >= limits.max_depth) {
        truncated = true;
        break;
      }
      path.push_back(0);
      fanout.push_back(opts.size());
      net->take_step(opts[0]);
      ++result.steps;
    }
    if (truncated) {
      result.complete = false;
    } else {
      ++result.executions;
      const std::string verdict = check();
      if (!verdict.empty() && result.violations.size() < 8)
        result.violations.push_back(verdict);
    }
    // Backtrack in memory: bump the deepest choice with an unexplored
    // sibling; exhausted when the path empties.
    for (;;) {
      if (path.empty()) return result;
      if (path.back() + 1 < fanout[path.size() - 1]) {
        ++path.back();
        break;
      }
      path.pop_back();
      fanout.pop_back();
    }
  }
}

}  // namespace asyncrd::sim
