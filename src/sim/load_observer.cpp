#include "sim/load_observer.h"

#include <set>

namespace asyncrd::sim {

node_id load_observer::hottest() const {
  node_id best = invalid_node;
  std::uint64_t best_load = 0;
  std::set<node_id> nodes;
  for (const auto& [v, c] : sent_) nodes.insert(v);
  for (const auto& [v, c] : received_) nodes.insert(v);
  for (const node_id v : nodes) {
    const std::uint64_t l = load_of(v);
    if (l > best_load) {
      best_load = l;
      best = v;
    }
  }
  return best;
}

std::uint64_t load_observer::max_load() const {
  const node_id h = hottest();
  return h == invalid_node ? 0 : load_of(h);
}

}  // namespace asyncrd::sim
