#include "sim/load_observer.h"

#include <algorithm>

namespace asyncrd::sim {

void load_observer::reserve_dense(std::size_t n) {
  if (n > dense_limit_) dense_limit_ = n;
  sent_.reserve(std::min(n, dense_limit_));
  received_.reserve(std::min(n, dense_limit_));
}

load_observer::spill_entry& load_observer::spill_for(node_id id) {
  const std::uint32_t found = spill_index_.find(id);
  if (found != flat_u64_map::npos) return spill_[found];
  const auto index = static_cast<std::uint32_t>(spill_.size());
  spill_.emplace_back();
  spill_.back().id = id;
  spill_index_.insert(id, index);
  return spill_[index];
}

std::uint64_t load_observer::spilled(node_id id, bool received) const noexcept {
  if (spill_.empty()) return 0;
  const std::uint32_t found = spill_index_.find(id);
  if (found == flat_u64_map::npos) return 0;
  return received ? spill_[found].received : spill_[found].sent;
}

std::vector<std::uint64_t> load_observer::loads() const {
  std::vector<std::uint64_t> out(std::max(sent_.size(), received_.size()), 0);
  for (std::size_t v = 0; v < sent_.size(); ++v) out[v] += sent_[v];
  for (std::size_t v = 0; v < received_.size(); ++v) out[v] += received_[v];
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<std::pair<node_id, std::uint64_t>> load_observer::all_loads()
    const {
  std::vector<std::pair<node_id, std::uint64_t>> out;
  const std::size_t dense = std::max(sent_.size(), received_.size());
  out.reserve(dense + spill_.size());
  for (std::size_t v = 0; v < dense; ++v) {
    const std::uint64_t l = (v < sent_.size() ? sent_[v] : 0) +
                            (v < received_.size() ? received_[v] : 0);
    if (l != 0) out.emplace_back(static_cast<node_id>(v), l);
  }
  for (const spill_entry& e : spill_) {
    const std::uint64_t l = e.sent + e.received;
    if (l != 0) out.emplace_back(e.id, l);
  }
  // Spill order is first-touch order; merge into one ascending-by-id view.
  // An id can appear in both homes after reserve_dense widened the window
  // mid-run, so combine equal ids.
  std::sort(out.begin(), out.end());
  std::size_t w = 0;
  for (std::size_t r = 0; r < out.size(); ++r) {
    if (w > 0 && out[w - 1].first == out[r].first)
      out[w - 1].second += out[r].second;
    else
      out[w++] = out[r];
  }
  out.resize(w);
  return out;
}

node_id load_observer::hottest() const {
  node_id best = invalid_node;
  std::uint64_t best_load = 0;
  for (const auto& [id, l] : all_loads()) {
    if (l > best_load) {
      best_load = l;
      best = id;
    }
  }
  return best;
}

std::uint64_t load_observer::max_load() const {
  std::uint64_t best = 0;
  for (const auto& [id, l] : all_loads()) best = std::max(best, l);
  return best;
}

void load_observer::reset() {
  sent_.clear();
  received_.clear();
  spill_index_.clear();
  spill_.clear();
}

}  // namespace asyncrd::sim
