#include "sim/load_observer.h"

#include <algorithm>

namespace asyncrd::sim {

std::vector<std::uint64_t> load_observer::loads() const {
  std::vector<std::uint64_t> out(std::max(sent_.size(), received_.size()), 0);
  for (std::size_t v = 0; v < sent_.size(); ++v) out[v] += sent_[v];
  for (std::size_t v = 0; v < received_.size(); ++v) out[v] += received_[v];
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

node_id load_observer::hottest() const {
  const auto all = loads();
  node_id best = invalid_node;
  std::uint64_t best_load = 0;
  for (std::size_t v = 0; v < all.size(); ++v) {
    if (all[v] > best_load) {
      best_load = all[v];
      best = static_cast<node_id>(v);
    }
  }
  return best;
}

std::uint64_t load_observer::max_load() const {
  const auto all = loads();
  return all.empty() ? 0 : *std::max_element(all.begin(), all.end());
}

void load_observer::reset() {
  sent_.clear();
  received_.clear();
}

}  // namespace asyncrd::sim
