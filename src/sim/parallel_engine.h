// Sharded execution of a *single* simulation with byte-identical replay.
//
// The paper's model hands us conservative lookahead for free: every
// scheduler delay is >= 1 (network::scheduled_delay enforces it), so no
// event dispatched at virtual time t can schedule work at t — one calendar
// bucket (one tick) is always a closed causal frontier.  The engine
// therefore runs the event loop window-by-window:
//
//   1. drain  — the coordinator pulls every event of the earliest tick out
//      of the calendar queue in (at, seq) order (calendar_queue::drain_next);
//   2. pre-pass — still serial, it pops each delivery's channel head and
//      pre-assigns the activation ids the window will consume (wake = 1,
//      deliver = 1 or 2, timer = 0; the awake-state evolution this depends
//      on is itself replayed in seq order against a per-node stamp array);
//   3. phase  — events partition across shards by destination slot index
//      (node state is only ever touched by its own shard) and workers run
//      the handlers; every side effect — sends, timer arms, observer
//      callbacks, trace records — is deferred into the shard's ordered log
//      (network::deferral_sink) instead of executing;
//   4. replay — back on the coordinator, the logs are walked in the
//      window's (at, seq) order and the deferred effects execute for real:
//      scheduler::delay and fault/jitter RNG draws, seq assignment,
//      calendar pushes, stats, observer fan-out, flight entries all happen
//      in exactly the serial order, so the merged execution is
//      byte-identical with network::run — same event (at, seq) total
//      order, same RNG streams, same activation ids, same reports.
//
// Deliveries whose handling mutates cross-shard state (ARQ acks: the
// *sender's* retransmit state and jitter stream) are classified by the
// link adapter (link_adapter::deliver_in_window) and executed entirely at
// the barrier instead, still in seq position.  Probes keep their serial
// mid-tick semantics: when one is due, the seq-least event is dispatched
// solo (through the same defer+replay machinery) before the probe fires.
//
// What parallelizes is the application handler work (protocol logic,
// message construction); what stays serial is scheduling and accounting.
// The 10k-node parallelism profiles (BENCH_parallelism.json) put the
// available width at 4.2-4.4x — the window protocol's ceiling on a wide
// host — while determinism stays the acceptance bar, not a casualty.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "sim/sweep.h"

namespace asyncrd::sim {

struct parallel_config {
  /// Worker shards; 0 = std::thread::hardware_concurrency (min 1).
  std::size_t shards = 0;
  /// Windows with fewer events than this run their phase inline on the
  /// coordinator (same defer+replay semantics, no barrier round-trip).
  std::size_t serial_window_threshold = 24;
  /// Replays one record deferred via network::defer_user_record, in serial
  /// activation order (core::discovery_run routes trace-sink transitions
  /// through this).
  std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)>
      user_replay;
};

/// Engine-level accounting for one run (telemetry/benches).
struct parallel_run_stats {
  std::uint64_t windows = 0;           ///< synchronization windows executed
  std::uint64_t parallel_windows = 0;  ///< fanned across the worker pool
  std::uint64_t serial_windows = 0;    ///< under the threshold, run inline
  std::uint64_t solo_events = 0;       ///< probe-fidelity solo dispatches
  std::uint64_t deferred_records = 0;  ///< log entries replayed at barriers
  std::uint64_t max_window_events = 0; ///< widest window seen
};

class parallel_engine {
 public:
  explicit parallel_engine(network& net, parallel_config cfg = {});
  ~parallel_engine();

  parallel_engine(const parallel_engine&) = delete;
  parallel_engine& operator=(const parallel_engine&) = delete;

  std::size_t shards() const noexcept { return shard_count_; }
  const parallel_run_stats& run_stats() const noexcept { return stats_; }

  /// Drop-in equivalent of network::run: same quiescence-hook loop, same
  /// idle-iteration guard, same probe and cap semantics, byte-identical
  /// execution.  Manual mode is not supported (it has no event loop).
  run_result run(std::uint64_t max_events = network::default_event_cap);

 private:
  struct shard_ctx;  // per-shard deferral log + counters (parallel_engine.cpp)

  /// Pre-pass output for one window event: where it runs, which activation
  /// ids it consumes, and (for deliveries) the channel head it releases.
  struct eplan {
    std::uint32_t shard = 0;
    std::uint8_t n_ids = 0;
    /// True = execute entirely at the barrier in seq position (timers,
    /// adapter-classified deliveries such as ARQ acks).
    bool barrier = false;
    std::uint32_t to_index = 0;
    std::uint64_t base_id = 0;
    node_id from = invalid_node;
    node_id to = invalid_node;
    network::queued_msg q;
  };

  run_result run_windows(std::uint64_t max_events);
  void process_window(sim_time at);
  void process_solo();
  void prepass();
  void run_phase(std::size_t worker);
  void run_phase_inline();
  void dispatch_deferred(std::size_t i, shard_ctx& sc);
  void replay();
  void replay_log_event(std::size_t i, shard_ctx& sc);
  void replay_barrier_event(std::size_t i);
  void merge_window();
  void prepare_new_channels();

  network* net_;
  parallel_config cfg_;
  std::size_t shard_count_;
  std::vector<std::unique_ptr<shard_ctx>> shards_;
  std::unique_ptr<worker_pool> pool_;  ///< only when shard_count_ > 1
  parallel_run_stats stats_;

  // Per-window scratch, reused across windows.
  std::vector<network::event> win_events_;
  std::vector<eplan> plan_;
  std::uint64_t win_id_end_ = 0;  ///< next_event_id_ after this window
  /// Awake-evolution stamps for the pre-pass (== stamp_gen_ means "woken
  /// earlier in this window").
  std::vector<std::uint64_t> woken_stamp_;
  std::uint64_t stamp_gen_ = 0;
  /// Channels already announced to the adapter via prepare_channel.
  std::size_t prepared_channels_ = 0;
};

}  // namespace asyncrd::sim
