#include "sim/parallel_engine.h"

#include <cassert>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/check.h"
#include "sim/flight_recorder.h"
#include "sim/profiler.h"

namespace asyncrd::sim {

/// One shard's side of a window: the deferral log handler effects land in
/// during the phase, plus per-shard counters and a private profiler so
/// workers never share mutable state.  Logs are append-only during the
/// phase and drained by the coordinator at the barrier.
struct parallel_engine::shard_ctx final : deferral_sink {
  struct record {
    enum class kind : std::uint8_t {
      evt,          ///< start of the records for window event index `a`
      act_wake,     ///< a = activation id, b = cause, c = release
      act_deliver,  ///< a = id, b = sent_in, c = released_in, t = sent_at
      app_send,     ///< application send (from, to, msg)
      wire_send,    ///< transport send (from, to, msg)
      timer_arm,    ///< a = delay, b = key
      user,         ///< opaque (a, b, c) for the engine's user_replay
    };
    kind k = kind::evt;
    std::uint8_t tag = 0;
    node_id from = invalid_node;
    node_id to = invalid_node;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    sim_time t = 0;
    message_ptr msg;
  };

  std::vector<record> log;
  std::size_t cursor = 0;          ///< replay position
  std::uint64_t app_deliveries = 0;
  cost_profiler prof;
  bool prof_armed = false;

  void push_evt(std::uint64_t index) {
    record r;
    r.k = record::kind::evt;
    r.a = index;
    log.push_back(std::move(r));
  }
  void push_act_wake(std::uint64_t id, std::uint64_t cause,
                     std::uint64_t release, node_id who) {
    record r;
    r.k = record::kind::act_wake;
    r.a = id;
    r.b = cause;
    r.c = release;
    r.from = who;
    log.push_back(std::move(r));
  }
  void push_act_deliver(std::uint64_t id, std::uint64_t sent_in,
                        std::uint64_t released_in, sim_time sent_at,
                        node_id from, node_id to, message_ptr m) {
    record r;
    r.k = record::kind::act_deliver;
    r.a = id;
    r.b = sent_in;
    r.c = released_in;
    r.t = sent_at;
    r.from = from;
    r.to = to;
    r.tag = m->dispatch_tag();
    r.msg = std::move(m);
    log.push_back(std::move(r));
  }

  // --- deferral_sink (called from network entry points in the phase) -----
  void defer_app_send(node_id from, node_id to, message_ptr m) override {
    record r;
    r.k = record::kind::app_send;
    r.from = from;
    r.to = to;
    r.msg = std::move(m);
    log.push_back(std::move(r));
  }
  void defer_wire_send(node_id from, node_id to, message_ptr m) override {
    record r;
    r.k = record::kind::wire_send;
    r.from = from;
    r.to = to;
    r.msg = std::move(m);
    log.push_back(std::move(r));
  }
  void defer_timer(sim_time delay, std::uint64_t key) override {
    record r;
    r.k = record::kind::timer_arm;
    r.a = delay;
    r.b = key;
    log.push_back(std::move(r));
  }
  void defer_user(std::uint64_t a, std::uint64_t b, std::uint64_t c) override {
    record r;
    r.k = record::kind::user;
    r.a = a;
    r.b = b;
    r.c = c;
    log.push_back(std::move(r));
  }
  void note_app_delivery() override { ++app_deliveries; }
};

parallel_engine::parallel_engine(network& net, parallel_config cfg)
    : net_(&net), cfg_(std::move(cfg)) {
  shard_count_ = cfg_.shards;
  if (shard_count_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    shard_count_ = hw == 0 ? 1 : hw;
  }
  shards_.reserve(shard_count_);
  for (std::size_t i = 0; i < shard_count_; ++i)
    shards_.push_back(std::make_unique<shard_ctx>());
  if (shard_count_ > 1) pool_ = std::make_unique<worker_pool>(shard_count_);
}

parallel_engine::~parallel_engine() = default;

run_result parallel_engine::run(std::uint64_t max_events) {
  network& net = *net_;
  if (net.manual_mode_)
    throw std::logic_error("parallel_engine: manual mode has no event loop");
  net.finalize_id_bits();
  // Channels that existed before this run (driver traffic) must have their
  // adapter-side receive state ready before any worker touches them.
  prepare_new_channels();
  const bool prof_armed = net.prof_ != nullptr;
  for (auto& sc : shards_) {
    sc->prof_armed = prof_armed;
    if (prof_armed) sc->prof.set_sample_every(net.prof_->sample_every());
  }
  // Same outer loop as network::run: quiescence hooks re-inject work, the
  // idle-iteration guard catches a stuck hook.
  run_result total;
  int idle_iterations = 0;
  for (;;) {
    run_result r = run_windows(max_events - total.events_processed);
    total.events_processed += r.events_processed;
    if (!r.completed) {
      total.completed = false;
      total.stopped = r.stopped;
      break;
    }
    idle_iterations = (r.events_processed == 0) ? idle_iterations + 1 : 0;
    if (idle_iterations > 2) {
      total.completed = false;
      break;
    }
    if (!net.sched_->on_quiescence(net)) break;
  }
  if (prof_armed) {
    for (auto& sc : shards_) {
      net.prof_->merge_from(sc->prof);
      sc->prof.reset();
    }
  }
  return total;
}

run_result parallel_engine::run_windows(std::uint64_t max_events) {
  network& net = *net_;
  net.stop_requested_ = false;
  run_result r;
  const auto start = std::chrono::steady_clock::now();
  cost_profiler* prof = net.prof_;
  if (prof != nullptr) prof->loop_enter();
  while (!net.events_.empty()) {
    if (r.events_processed >= max_events) {
      r.completed = false;
      break;
    }
    const sim_time at = net.events_.peek_time();
    if (at >= net.next_probe_) {
      // Serial probe fidelity: a probe fires after the *first* event at or
      // past its due time, mid-tick.  Dispatch the seq-least event solo
      // (through the same defer+replay machinery), probe, resume.
      process_solo();
      ++r.events_processed;
      {
        prof_scope ps(prof, cost_profiler::phase::probes);
        net.fire_probes();
      }
      if (net.stop_requested_) {
        r.completed = false;
        r.stopped = true;
        break;
      }
      continue;
    }
    win_events_.clear();
    sim_time t;
    {
      prof_scope ps(prof, cost_profiler::phase::queue_pop);
      t = net.events_.drain_next(win_events_);
    }
    process_window(t);
    r.events_processed += win_events_.size();
    if (r.events_processed > max_events) {
      // The cap landed inside this window.  Windows complete atomically
      // (drained events cannot be re-queued), so the cap hit is reported
      // with the overshoot included — same completed=false verdict the
      // serial loop gives, reached at window granularity.
      r.completed = false;
      break;
    }
  }
  if (prof != nullptr) prof->loop_exit();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ++net.timing_.loops;
  net.timing_.events += r.events_processed;
  net.timing_.wall_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  net.sched_->on_run_timing(net.timing_);
  return r;
}

void parallel_engine::process_solo() {
  network& net = *net_;
  win_events_.clear();
  {
    prof_scope ps(net.prof_, cost_profiler::phase::queue_pop);
    win_events_.push_back(net.events_.pop());
  }
  ++stats_.solo_events;
  process_window(win_events_.front().at);
}

void parallel_engine::process_window(sim_time at) {
  network& net = *net_;
  net.now_ = at;
  {
    prof_scope ps(net.prof_, cost_profiler::phase::queue_pop);
    prepass();
  }
  const std::size_t count = win_events_.size();
  ++stats_.windows;
  if (count > stats_.max_window_events) stats_.max_window_events = count;
  const bool fan_out =
      pool_ != nullptr && count >= cfg_.serial_window_threshold;
  net.deferred_ = true;
  try {
    if (fan_out) {
      ++stats_.parallel_windows;
      pool_->run([this](std::size_t w) { run_phase(w); });
    } else {
      ++stats_.serial_windows;
      run_phase_inline();
    }
  } catch (...) {
    net.deferred_ = false;
    network::set_thread_deferral(nullptr);
    throw;
  }
  net.deferred_ = false;
  replay();
  merge_window();
}

void parallel_engine::prepass() {
  network& net = *net_;
  plan_.clear();
  plan_.resize(win_events_.size());
  if (woken_stamp_.size() < net.slots_.size())
    woken_stamp_.resize(net.slots_.size(), 0);
  ++stamp_gen_;
  std::uint64_t id_cursor = net.next_event_id_;
  for (std::size_t i = 0; i < win_events_.size(); ++i) {
    const network::event& ev = win_events_[i];
    eplan& pl = plan_[i];
    switch (ev.kind) {
      case network::event_kind::wake: {
        const std::uint32_t idx = ev.target;
        pl.to_index = idx;
        pl.shard = static_cast<std::uint32_t>(idx % shard_count_);
        const bool awake =
            net.slots_[idx].awake || woken_stamp_[idx] == stamp_gen_;
        if (!awake) {
          pl.n_ids = 1;
          woken_stamp_[idx] = stamp_gen_;
        }
        break;
      }
      case network::event_kind::deliver: {
        network::channel& ch = net.channels_[ev.target];
        assert(!ch.queue.empty());
        // FIFO pop happens here, serially in (at, seq) order, so the phase
        // never mutates channel queues and mixed in-window/at-barrier
        // deliveries on one channel still release heads in seq order.
        pl.q = std::move(ch.queue.front());
        ch.queue.pop_front();
        --net.in_flight_;
        pl.from = ch.from;
        pl.to = ch.to;
        pl.to_index = ch.to_index;
        pl.shard = static_cast<std::uint32_t>(pl.to_index % shard_count_);
        pl.barrier = net.adapter_ != nullptr &&
                     !net.adapter_->deliver_in_window(*pl.q.m);
        const bool awake = net.slots_[pl.to_index].awake ||
                           woken_stamp_[pl.to_index] == stamp_gen_;
        pl.n_ids = awake ? 1 : 2;
        if (!awake) {
          // deliver_in_window contract: a barrier-classified message can
          // only arrive at an awake node (an ARQ ack's destination sent
          // data, so it woke long ago).  A sleeping target would make the
          // phase run handlers before the node's serial on_wake.
          ASYNCRD_CHECK(!pl.barrier &&
                        "barrier-classified delivery to a sleeping node");
          woken_stamp_[pl.to_index] = stamp_gen_;
        }
        break;
      }
      case network::event_kind::timer: {
        // Timers mutate adapter sender state and draw from jitter streams:
        // always serial, always at the barrier, in seq position.
        pl.barrier = true;
        break;
      }
    }
    pl.base_id = id_cursor;
    id_cursor += pl.n_ids;
  }
  win_id_end_ = id_cursor;
}

void parallel_engine::run_phase(std::size_t worker) {
  shard_ctx& sc = *shards_[worker];
  network::set_thread_deferral(&sc);
  try {
    const std::size_t n = win_events_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const eplan& pl = plan_[i];
      if (pl.shard == worker && !pl.barrier) dispatch_deferred(i, sc);
    }
  } catch (...) {
    network::set_thread_deferral(nullptr);
    throw;
  }
  network::set_thread_deferral(nullptr);
}

void parallel_engine::run_phase_inline() {
  const std::size_t n = win_events_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const eplan& pl = plan_[i];
    if (pl.barrier) continue;
    shard_ctx& sc = *shards_[pl.shard];
    network::set_thread_deferral(&sc);
    dispatch_deferred(i, sc);
  }
  network::set_thread_deferral(nullptr);
}

void parallel_engine::dispatch_deferred(std::size_t i, shard_ctx& sc) {
  network& net = *net_;
  const network::event& ev = win_events_[i];
  const eplan& pl = plan_[i];
  sc.push_evt(i);
  cost_profiler* prof = sc.prof_armed ? &sc.prof : nullptr;
  if (prof != nullptr) prof->event_begin();
  switch (ev.kind) {
    case network::event_kind::wake: {
      // The pre-pass is the ground truth for wake consumption: n_ids == 0
      // means the node was (or will have been, in seq order) awake.
      if (pl.n_ids == 1) {
        network::node_slot& slot = net.slots_[ev.target];
        slot.awake = true;
        sc.push_act_wake(pl.base_id, ev.cause, trace_context::none, slot.id);
        process* proc = slot.proc.get();
        context ctx(net, slot.id);
        prof_scope ps(prof, cost_profiler::phase::wake);
        proc->on_wake(ctx);
      }
      break;
    }
    case network::event_kind::deliver: {
      std::uint64_t id = pl.base_id;
      if (pl.n_ids == 2) {
        network::node_slot& slot = net.slots_[pl.to_index];
        slot.awake = true;
        // A message-induced wake shares the arriving message's causes.
        sc.push_act_wake(id, pl.q.sent_in, pl.q.released_in, slot.id);
        process* proc = slot.proc.get();
        context ctx(net, slot.id);
        {
          prof_scope ps(prof, cost_profiler::phase::wake);
          proc->on_wake(ctx);
        }
        ++id;
      }
      sc.push_act_deliver(id, pl.q.sent_in, pl.q.released_in, pl.q.sent_at,
                          pl.from, pl.to, pl.q.m);
      if (net.adapter_ != nullptr) {
        // In-window transport delivery (ARQ data): receive-side state is
        // owned by this shard; released app messages run here, acks the
        // adapter emits are deferred.
        prof_scope ps(prof, cost_profiler::phase::arq);
        net.adapter_->transport_deliver(pl.from, pl.to, pl.q.m);
      } else {
        ++sc.app_deliveries;
        process* proc = net.slots_[pl.to_index].proc.get();
        context ctx(net, pl.to);
        prof_scope ps(prof, pl.q.m->dispatch_tag(), prof_scope::tag_t{});
        proc->on_message(ctx, pl.from, pl.q.m);
      }
      break;
    }
    case network::event_kind::timer:
      break;  // barrier-replayed, never phase-dispatched
  }
  if (prof != nullptr) prof->event_end();
}

void parallel_engine::replay() {
  network& net = *net_;
  for (auto& sc : shards_) sc->cursor = 0;
  const std::size_t n = win_events_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const eplan& pl = plan_[i];
    net.next_event_id_ = pl.base_id;
    if (pl.barrier)
      replay_barrier_event(i);
    else
      replay_log_event(i, *shards_[pl.shard]);
  }
  net.next_event_id_ = win_id_end_;
  prepare_new_channels();
}

void parallel_engine::replay_log_event(std::size_t i, shard_ctx& sc) {
  network& net = *net_;
  using record = shard_ctx::record;
  auto& log = sc.log;
  ASYNCRD_CHECK(sc.cursor < log.size() &&
                log[sc.cursor].k == record::kind::evt &&
                log[sc.cursor].a == i);
  ++sc.cursor;
  cost_profiler* prof = net.prof_;
  bool open = false;
  while (sc.cursor < log.size() && log[sc.cursor].k != record::kind::evt) {
    record& r = log[sc.cursor++];
    ++stats_.deferred_records;
    switch (r.k) {
      case record::kind::act_wake: {
        if (open) net.end_activation();
        net.next_event_id_ = r.a;
        net.begin_activation(r.b, r.c, net.now_);
        open = true;
        if (net.flight_ != nullptr)
          net.flight_->record({net.now_, r.a, r.b, r.from, invalid_node,
                               flight_entry::kind::wake, 0});
        {
          prof_scope ps(prof, cost_profiler::phase::observers);
          net.observers_.on_wake(net.now_, r.from);
        }
        break;
      }
      case record::kind::act_deliver: {
        if (open) net.end_activation();
        net.next_event_id_ = r.a;
        net.begin_activation(r.b, r.c, r.t);
        open = true;
        if (net.flight_ != nullptr)
          net.flight_->record({net.now_, r.a, r.b, r.from, r.to,
                               flight_entry::kind::deliver, r.tag});
        if (!net.observers_.empty()) {
          prof_scope ps(prof, cost_profiler::phase::observers);
          net.observers_.on_deliver(net.now_, r.from, r.to, *r.msg);
        }
        break;
      }
      case record::kind::app_send:
        // Runs the full serial send path (adapter app_send, fault rolls,
        // scheduler::delay, seq assignment) under the replayed tctx_.
        net.send_internal(r.from, r.to, std::move(r.msg));
        break;
      case record::kind::wire_send:
        net.transport_send(r.from, r.to, std::move(r.msg));
        break;
      case record::kind::timer_arm:
        net.schedule_adapter_timer(static_cast<sim_time>(r.a), r.b);
        break;
      case record::kind::user:
        if (cfg_.user_replay) cfg_.user_replay(r.a, r.b, r.c);
        break;
      case record::kind::evt:
        break;  // unreachable: loop guard stops at the next marker
    }
  }
  if (open) net.end_activation();
}

void parallel_engine::replay_barrier_event(std::size_t i) {
  network& net = *net_;
  const network::event& ev = win_events_[i];
  const eplan& pl = plan_[i];
  cost_profiler* prof = net.prof_;
  if (ev.kind == network::event_kind::timer) {
    if (net.flight_ != nullptr)
      net.flight_->record({net.now_, flight_entry::none, ev.cause,
                           invalid_node, invalid_node,
                           flight_entry::kind::timer, 0});
    if (net.adapter_ != nullptr) {
      prof_scope ps(prof, cost_profiler::phase::arq);
      net.adapter_->on_timer(ev.cause);
    }
    return;
  }
  // Barrier-classified delivery (ARQ ack): the full serial dispatch runs
  // here in seq position — minus the channel pop the pre-pass already did.
  net.ensure_awake(pl.to_index, pl.q.sent_in, pl.q.released_in);
  net.begin_activation(pl.q.sent_in, pl.q.released_in, pl.q.sent_at);
  if (net.flight_ != nullptr)
    net.flight_->record({net.now_, net.tctx_.event_id, pl.q.sent_in, pl.from,
                         pl.to, flight_entry::kind::deliver,
                         pl.q.m->dispatch_tag()});
  if (!net.observers_.empty()) {
    prof_scope ps(prof, cost_profiler::phase::observers);
    net.observers_.on_deliver(net.now_, pl.from, pl.to, *pl.q.m);
  }
  if (net.adapter_ != nullptr) {
    prof_scope ps(prof, cost_profiler::phase::arq);
    net.adapter_->transport_deliver(pl.from, pl.to, pl.q.m);
  } else {
    ++net.app_deliveries_;
    process* proc = net.slots_[pl.to_index].proc.get();
    context ctx(net, pl.to);
    prof_scope ps(prof, pl.q.m->dispatch_tag(), prof_scope::tag_t{});
    proc->on_message(ctx, pl.from, pl.q.m);
  }
  net.end_activation();
}

void parallel_engine::merge_window() {
  network& net = *net_;
  for (auto& scp : shards_) {
    shard_ctx& sc = *scp;
    net.app_deliveries_ += sc.app_deliveries;
    sc.app_deliveries = 0;
    sc.log.clear();
    sc.cursor = 0;
  }
}

void parallel_engine::prepare_new_channels() {
  network& net = *net_;
  if (net.adapter_ == nullptr) {
    prepared_channels_ = net.channels_.size();
    return;
  }
  for (; prepared_channels_ < net.channels_.size(); ++prepared_channels_) {
    const network::channel& ch = net.channels_[prepared_channels_];
    net.adapter_->prepare_channel(ch.from, ch.to);
  }
}

}  // namespace asyncrd::sim
