// Message and bit accounting, broken down by message type.
//
// This is the measurement apparatus behind every benchmark: Theorems 5-7 and
// Lemmas 5.5-5.10 all bound either a per-type message count or a per-type
// bit count, and the checker/benches read those bounds off this object.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "sim/message.h"

namespace asyncrd::sim {

/// Counters for one message type.
struct type_stats {
  std::uint64_t count = 0;
  std::uint64_t bits = 0;
};

/// Per-run accounting.  Owned by the network; counts at send time (the paper
/// counts messages *sent*).
class stats {
 public:
  /// id_bits = ceil(log2 n) of the network under test; must be set before
  /// the first message is recorded (network::finalize does this).
  void set_id_bits(std::size_t id_bits) noexcept { id_bits_ = id_bits; }
  std::size_t id_bits() const noexcept { return id_bits_; }

  void record(const message& m);

  std::uint64_t total_messages() const noexcept { return total_count_; }
  std::uint64_t total_bits() const noexcept { return total_bits_; }

  /// Count/bits for one type; zero if the type never appeared.
  std::uint64_t messages_of(std::string_view type) const;
  std::uint64_t bits_of(std::string_view type) const;

  /// Sum of counts over several types (e.g. "search" + "release").
  std::uint64_t messages_of_any(std::initializer_list<std::string_view> types) const;

  const std::map<std::string, type_stats, std::less<>>& by_type() const noexcept {
    return by_type_;
  }

  void reset();

 private:
  std::map<std::string, type_stats, std::less<>> by_type_;
  /// Tagged messages (message::dispatch_tag != 0) resolve their by_type_
  /// entry through this cache instead of a string-keyed tree walk per send.
  /// std::map nodes are pointer-stable, so the cached slots survive inserts.
  /// Requires tag -> type_name to be one-to-one, which the core vocabulary
  /// guarantees by construction.
  std::array<type_stats*, 256> by_tag_{};
  std::uint64_t total_count_ = 0;
  std::uint64_t total_bits_ = 0;
  std::size_t id_bits_ = 1;
};

}  // namespace asyncrd::sim
