#include "sim/wire.h"

#include <cstring>
#include <limits>

namespace asyncrd::sim::wire {

std::uint64_t reader::varint() {
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    if (p_ == end_) throw decode_error("wire: truncated varint");
    const std::uint8_t b = *p_++;
    if (shift == 63 && (b & 0x7E) != 0)
      throw decode_error("wire: varint exceeds 64 bits");
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) throw decode_error("wire: varint exceeds 64 bits");
  }
}

id_set_view id_set_view::parse(reader& r) {
  const std::uint64_t count = r.varint();
  const std::uint8_t* first = r.pos();
  // Hostile-frame bound: each id costs at least one byte, so a count larger
  // than the remaining payload is malformed *by arithmetic* — reject it
  // before any iteration or reservation keyed on the declared count.  (A
  // few-byte crafted frame can claim a billion-element set; without this
  // check the validation loop below would still throw, but only after
  // walking the whole remainder, and any caller that sized storage from
  // size() before iterating would allocate gigabytes first.)
  if (count > r.remaining())
    throw decode_error("wire: id set count exceeds frame");
  std::uint64_t cur = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t d = r.varint();
    if (i == 0) {
      cur = d;
      continue;
    }
    if (d == 0) throw decode_error("wire: id set delta is zero (not sorted)");
    if (d > std::numeric_limits<std::uint64_t>::max() - cur)
      throw decode_error("wire: id set overflows 64 bits");
    cur += d;
  }
  return id_set_view(first, static_cast<std::size_t>(count));
}

}  // namespace asyncrd::sim::wire

namespace asyncrd::sim {

wire_msg::wire_msg(const message& inner, const std::uint8_t* frame,
                   std::size_t len)
    : message(frame[0]),
      name_(inner.type_name()),
      ids_(static_cast<std::uint32_t>(inner.id_fields())),
      ints_(static_cast<std::uint32_t>(inner.int_fields())),
      flags_(static_cast<std::uint32_t>(inner.flag_bits())),
      len_(static_cast<std::uint32_t>(len)) {
  std::uint8_t* dst = inline_;
  if (len_ > inline_capacity) {
    heap_ = static_cast<std::uint8_t*>(pool_detail::allocate(len_));
    dst = heap_;
  }
  std::memcpy(dst, frame, len_);
}

wire_msg::wire_msg(const std::uint8_t* frame, std::size_t len,
                   std::string_view name)
    : message(frame[0]), name_(name), len_(static_cast<std::uint32_t>(len)) {
  std::uint8_t* dst = inline_;
  if (len_ > inline_capacity) {
    heap_ = static_cast<std::uint8_t*>(pool_detail::allocate(len_));
    dst = heap_;
  }
  std::memcpy(dst, frame, len_);
}

wire_msg::~wire_msg() {
  if (len_ > inline_capacity) pool_detail::deallocate(heap_, len_);
}

}  // namespace asyncrd::sim
