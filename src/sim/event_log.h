// Structured execution logging: an observer that records every wake, send,
// and delivery, with helpers to render a readable timeline.  Used by the
// trace_timeline example and by tests that assert on event order; cheap
// enough to arm on any run you need to debug.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

#include "common/ids.h"
#include "sim/network.h"

namespace asyncrd::sim {

struct logged_event {
  enum class kind : std::uint8_t { wake, send, deliver };
  kind what;
  sim_time at;
  node_id from = invalid_node;  // unused for wake
  node_id to = invalid_node;    // the woken node for wake
  std::string type;             // message type name; empty for wake
};

class event_log final : public observer {
 public:
  /// Keep at most `capacity` events.  The log is a ring: once full, each new
  /// event evicts the oldest one (and bumps dropped()), so what survives is
  /// always the newest window — the part you want when debugging how a long
  /// run ended.
  explicit event_log(std::size_t capacity = 1 << 20) : capacity_(capacity) {}

  void on_wake(sim_time t, node_id v) override;
  void on_send(sim_time t, node_id from, node_id to, const message& m) override;
  void on_deliver(sim_time t, node_id from, node_id to,
                  const message& m) override;

  /// The retained events, oldest first.  This LINEARIZES: it copies every
  /// retained event (strings included).  Prefer at()/visit() for queries —
  /// they walk the ring in place.
  std::vector<logged_event> events() const;
  /// Number of retained events (no linearizing copy).
  std::size_t size() const noexcept { return events_.size(); }
  /// Events evicted because the log was at capacity.
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// The i-th retained event, oldest first (0 <= i < size()).  Constant
  /// time, no copy: a reference into the ring.
  const logged_event& at(std::size_t i) const {
    return events_[(start_ + i) % events_.size()];
  }

  /// Applies `f` to each retained event, oldest first, in place (no copy).
  /// `f` may return void, or bool where false stops the iteration early.
  template <typename F>
  void visit(F&& f) const {
    const std::size_t n = events_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const logged_event& e = events_[(start_ + i) % n];
      if constexpr (std::is_invocable_r_v<bool, F&, const logged_event&>) {
        if (!f(e)) return;
      } else {
        f(e);
      }
    }
  }

  /// Count of events of one kind (no allocation).
  std::size_t count_of_kind(logged_event::kind k) const;

  /// Count of events touching one node (no allocation).
  std::size_t count_touching(node_id v) const;

  /// Events of one kind, in order (copies; see of-kind counting above).
  std::vector<logged_event> of_kind(logged_event::kind k) const;

  /// Events touching one node (as sender, receiver, or woken), in order.
  std::vector<logged_event> touching(node_id v) const;

  /// One line per event: "t=12 deliver 3->7 search".
  void render(std::ostream& os, std::size_t max_lines = 200) const;

  void clear();

 private:
  void push(logged_event ev);

  std::size_t capacity_;
  /// Ring storage: grows to capacity_, then wraps; start_ is the index of
  /// the oldest retained event once full (0 before that).
  std::vector<logged_event> events_;
  std::size_t start_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace asyncrd::sim
