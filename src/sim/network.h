// The asynchronous message-passing network: event queue, FIFO channels,
// wake-up control, sender blocking (for adversarial executions), accounting.
//
// Model fidelity (paper §1.2):
//   * reliable: every sent message is eventually delivered;
//   * asynchronous: delivery delays are arbitrary (scheduler-chosen);
//   * FIFO per ordered pair (u, v): enforced structurally — each channel is
//     a queue and a delivery event always releases the channel head;
//   * no global start: nodes wake via explicit wake events, via adversary
//     quiescence hooks, or implicitly upon first message delivery
//     ("nodes ... may wake-up nearby neighbors").
//
// The knowledge-graph constraint (u may only message nodes whose id it
// knows) is the *algorithms'* obligation; the network transports any
// (from, to) pair and the checker audits knowledge-graph discipline.
//
// Chaos mode relaxes "reliable": an installed fault_plan drops, duplicates,
// extra-delays, or outage-blackholes transmissions at the send/release
// choke points, and an installed link_adapter (sim/reliable_link.h) rebuilds
// the reliable-FIFO contract above the lossy wire so the paper's algorithms
// run unmodified.  Observers and sim::stats see the *transport* level —
// envelopes, retransmissions, and acks — which is what makes the chaos
// overhead measurable (bench_chaos_overhead).
//
// Hot-path layout (the dense core): node ids are compacted to dense slot
// indices on add_node, so the node table is a std::vector and the per-event
// lookups are array indexing; channels live in a std::vector addressed
// through a flat open-addressed table keyed by the packed (from, to) index
// pair, with each sender keeping its outgoing channel list sorted by
// destination id (adversarial release order stays deterministic); events
// flow through a calendar queue (sim/scheduler.h) instead of a binary heap.
// All externally observable orders — event (at, seq) order, channel
// iteration order, node id order — are identical to the original
// std::map-based implementation; the determinism suite and the golden trace
// pin that equivalence.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "common/flat_hash.h"
#include "common/ids.h"
#include "common/rng.h"
#include "sim/flight_recorder.h"
#include "sim/message.h"
#include "sim/profiler.h"
#include "sim/scheduler.h"
#include "sim/stats.h"
#include "sim/transport.h"
#include "sim/wire.h"

namespace asyncrd::sim {

class network;

/// Seeded per-channel fault plan — the chaos transport layer under the
/// paper's reliable-FIFO model.  Faults are injected where a transmission
/// is put on the wire: the send choke point for unblocked senders, the
/// release choke point for adversarially held messages.  Wakes are local
/// and never faulted, and manual mode (exhaustive exploration) is mutually
/// exclusive with a fault plan.
///
/// Every decision draws from a per-channel splitmix stream keyed by
/// (seed, from, to), so a chaos execution is byte-deterministic per seed
/// regardless of channel creation order or wall-clock timing.
///
/// The paper's algorithms assume reliable links (§1.2); running them
/// directly on a faulty transport voids every guarantee.  Layer
/// sim::reliable_link_layer on top (network::set_link_adapter) to restore
/// the reliable-FIFO contract — the algorithms then run unmodified.
struct fault_plan {
  std::uint64_t seed = 1;
  double drop = 0.0;       ///< per-transmission loss probability
  double duplicate = 0.0;  ///< per-transmission duplication probability
  /// Adversarial extra-reorder: up to this much additional delivery delay,
  /// drawn uniformly per transmission.  Stays inside the model's delay
  /// freedom (delays remain finite and >= the scheduler's choice) but
  /// shuffles cross-channel interleavings far harder than the scheduler
  /// alone; per-channel FIFO stays structural either way.
  sim_time reorder_slack = 0;
  /// Transient link outages: each ordered link (u, v) is down for
  /// `outage_duration` ticks out of every `outage_period`, with a per-link
  /// phase offset derived from the seed.  Transmissions attempted inside a
  /// window are lost.  0 disables outages.
  sim_time outage_period = 0;
  sim_time outage_duration = 0;

  bool enabled() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || reorder_slack > 0 ||
           (outage_period > 0 && outage_duration > 0);
  }
};

/// Chaos-transport accounting (network::faults()).  All counters are
/// cumulative over the run and deterministic per seed.
struct fault_stats {
  std::uint64_t transmissions = 0;  ///< wire attempts the plan ruled on
  std::uint64_t drops = 0;          ///< random losses
  std::uint64_t outage_drops = 0;   ///< losses inside an outage window
  std::uint64_t duplicates = 0;     ///< extra copies injected
  std::uint64_t reorder_delay = 0;  ///< total extra delay ticks injected
};

/// Hook a reliable-delivery adapter implements (sim/reliable_link.h).
/// When installed on a network, application sends (context::send) route
/// through app_send, every transport-level delivery is handed to
/// transport_deliver *inside* the delivery activation (the adapter calls
/// network::app_deliver for each application message it releases in order),
/// and network::schedule_adapter_timer feeds on_timer for retransmission.
class link_adapter {
 public:
  virtual ~link_adapter() = default;
  virtual void app_send(node_id from, node_id to, message_ptr m) = 0;
  virtual void transport_deliver(node_id from, node_id to,
                                 const message_ptr& m) = 0;
  virtual void on_timer(std::uint64_t key) = 0;

  // --- sharded execution contract (sim/parallel_engine.h) ---------------
  //
  // Under the parallel engine, transport deliveries run on worker threads
  // partitioned by destination node, while app_send and on_timer always
  // run on the coordinator in serial (at, seq) order.  The two hooks below
  // let an adapter keep its internal state race-free under that split; the
  // defaults are correct for adapters without cross-delivery state.

  /// Classifies a transport delivery: return true if handling `m` at `to`
  /// only touches state owned by `to`'s shard (per-destination receive
  /// state, app deliveries), false if it must be deferred to the barrier
  /// and handled serially (e.g. acks that mutate the *sender's* ARQ state
  /// and draw from its RNG streams — replaying those in (at, seq) order is
  /// what keeps parallel runs byte-identical with serial ones).
  virtual bool deliver_in_window(const message&) const { return true; }

  /// Called by the parallel engine, on the coordinator, after the barrier
  /// of any window that created new channels: (from, to) is now a live
  /// ordered channel.  Adapters pre-create per-channel receive state here
  /// so the worker-phase lookups never insert into shared tables.
  virtual void prepare_channel(node_id /*from*/, node_id /*to*/) {}
};

/// Egress hook for destinations this network does not host (service mode).
/// With a gateway installed, an application send whose destination id is not
/// a local node is handed here — after wire encoding and accounting, before
/// the local fault plan or link adapter see it — instead of throwing
/// "unknown destination".  The gateway (src/net/node_host.h) carries the
/// frame to the owning process over its own transport; the reply path comes
/// back through network::inject_remote.
class remote_gateway {
 public:
  virtual ~remote_gateway() = default;
  virtual void remote_send(node_id from, node_id to, message_ptr m) = 0;
};

/// Per-worker sink for network effects generated inside a parallel window
/// (sim/parallel_engine.h).  While a window phase runs, every handler-
/// initiated send, timer arm, and trace record is appended to the calling
/// worker's sink instead of executing; the engine replays the logs at the
/// barrier in serial (at, seq) order.  Installed per thread via
/// network::set_thread_deferral.
class deferral_sink {
 public:
  virtual void defer_app_send(node_id from, node_id to, message_ptr m) = 0;
  virtual void defer_wire_send(node_id from, node_id to, message_ptr m) = 0;
  virtual void defer_timer(sim_time delay, std::uint64_t key) = 0;
  /// Opaque user record (trace-sink transitions); replayed through the
  /// engine's user_replay callback in serial order.
  virtual void defer_user(std::uint64_t a, std::uint64_t b,
                          std::uint64_t c) = 0;
  /// Counts one application-level delivery on this worker's shard.
  virtual void note_app_delivery() = 0;

 protected:
  ~deferral_sink() = default;
};

/// Handle a process uses to interact with the network from inside a handler.
class context {
 public:
  context(network& net, node_id self) noexcept : net_(&net), self_(self) {}

  node_id self() const noexcept { return self_; }
  sim_time now() const noexcept;

  /// Send a message; it will be delivered after a scheduler-chosen delay,
  /// in FIFO order relative to other messages on the same (self, to) pair.
  void send(node_id to, message_ptr m);

 private:
  network* net_;
  node_id self_;
};

/// A protocol endpoint.  One instance per node; driven by the event loop.
class process {
 public:
  virtual ~process() = default;

  /// Called exactly once, before the first message is delivered to this
  /// node (whether the wake was scheduled explicitly or induced by a
  /// message arrival).
  virtual void on_wake(context& ctx) = 0;

  /// Called for each delivered message, after on_wake.  The shared pointer
  /// lets protocols park messages for later (selective receive) without
  /// copying payloads.
  virtual void on_message(context& ctx, node_id from, const message_ptr& m) = 0;
};

/// Passive observer of network events (used by the trace recorder and by
/// invariant checkers that must run at every step, e.g. Lemma 5.1).
class observer {
 public:
  virtual ~observer() = default;
  virtual void on_send(sim_time, node_id /*from*/, node_id /*to*/, const message&) {}
  virtual void on_deliver(sim_time, node_id /*from*/, node_id /*to*/, const message&) {}
  virtual void on_wake(sim_time, node_id) {}
};

/// Composite observer: fans every event out to N observers in registration
/// order.  The network holds one of these, so stats monitors, load
/// observers, event logs, and telemetry can all be armed on the same run.
class multi_observer final : public observer {
 public:
  /// Registers an observer (not owned; must outlive the composite).
  /// Callbacks fire in registration order.
  void add(observer* obs);

  /// Unregisters; returns false if the observer was not registered.
  bool remove(observer* obs);

  void clear() noexcept { observers_.clear(); }
  std::size_t size() const noexcept { return observers_.size(); }
  bool empty() const noexcept { return observers_.empty(); }

  void on_send(sim_time t, node_id from, node_id to, const message& m) override {
    for (observer* o : observers_) o->on_send(t, from, to, m);
  }
  void on_deliver(sim_time t, node_id from, node_id to, const message& m) override {
    for (observer* o : observers_) o->on_deliver(t, from, to, m);
  }
  void on_wake(sim_time t, node_id v) override {
    for (observer* o : observers_) o->on_wake(t, v);
  }

 private:
  std::vector<observer*> observers_;
};

/// Periodic virtual-time callback driven by the event loop (runtime health
/// layer: series samplers, stall watchdogs).  The network fires on_probe
/// after dispatching the first event at or past the probe's due time — the
/// unarmed cost is one integer compare per event.  Probes run *between*
/// activations (like quiescence hooks) and must not send traffic.
class health_probe {
 public:
  virtual ~health_probe() = default;
  /// Returns the next virtual time this probe wants to fire (values <= now
  /// are clamped to now + 1), or 0 to detach for the rest of the run.
  virtual sim_time on_probe(network& net) = 0;
};

/// Result of network::run.
struct run_result {
  std::uint64_t events_processed = 0;
  /// False iff the event cap was hit (indicates a bug / livelock) or a
  /// health probe aborted the run (`stopped`).
  bool completed = true;
  /// True iff a health probe called network::request_stop (e.g. a stall
  /// watchdog configured to abort on trip).
  bool stopped = false;
};

/// Causal identity of the *activation* currently being dispatched — one
/// wake callback or one delivery callback.  Valid inside observer callbacks
/// and node handlers; `active` is false between events.
///
/// Two distinct causal edges feed an activation (both are happened-before
/// edges in Lamport's sense):
///   * `cause`   — message genealogy: the activation in which the delivered
///     message was sent (or, for a message-induced wake, the same);
///   * `release` — scheduling causality: the activation whose quiescence
///     made the adversary release a held message or inject a wake
///     (Theorem 1's staged stalling, Lemma 3.1's sequential wake-up).
/// Either may be `none` (explicit initial wakes are roots).
struct trace_context {
  static constexpr std::uint64_t none = ~std::uint64_t{0};
  std::uint64_t event_id = none;  ///< unique id of this activation
  std::uint64_t cause = none;     ///< genealogy parent
  std::uint64_t release = none;   ///< scheduling parent
  sim_time sent_at = 0;           ///< deliver: sim time the message left
  bool active = false;
};

class network : public transport {
 public:
  explicit network(scheduler& sched) : sched_(&sched) {}

  network(const network&) = delete;
  network& operator=(const network&) = delete;

  // --- topology / membership -------------------------------------------

  /// Registers a node.  May be called before run() or during it (dynamic
  /// node additions, §6); a node added mid-run still needs wake().
  void add_node(node_id id, std::unique_ptr<process> p);

  /// Pre-sizes the dense node table (and its id -> index map) for `n`
  /// nodes.  discovery_run calls this with the graph size before the
  /// add_node loop; purely an optimization.
  void reserve_nodes(std::size_t n);

  std::size_t node_count() const noexcept { return slots_.size(); }
  std::vector<node_id> node_ids() const;
  bool has_node(node_id id) const { return index_of(id) != npos; }

  /// Access to the process object (checkers downcast to the concrete type).
  process* find(node_id id);
  const process* find(node_id id) const;

  bool is_awake(node_id id) const;

  /// Fixes the id width used for bit accounting.  Called automatically on
  /// first run() from the current node count; call explicitly when nodes
  /// will be added dynamically and the final size is larger.
  void set_id_bits(std::size_t bits) { stats_.set_id_bits(bits); }

  // --- scheduling control ----------------------------------------------

  /// Schedules a wake event for the node at now + 1.
  void wake(node_id id);

  /// Adversary control: messages sent by `id` are queued but no delivery is
  /// scheduled until unblock_sender(id).  Must be invoked before `id` sends
  /// anything (Theorem 1 stalls senders from the very start).
  void block_sender(node_id id);

  /// Releases everything `id` has queued and lets future sends through.
  void unblock_sender(node_id id);

  bool is_blocked(node_id id) const {
    const std::uint32_t i = index_of(id);
    return i != npos && slots_[i].blocked;
  }

  // --- chaos transport ---------------------------------------------------
  //
  // A fault plan makes the wire lossy (drop/duplicate/extra-reorder/outage)
  // at the send/release choke points; a link adapter layers a reliable
  // delivery protocol above it.  Both must be installed before any traffic
  // and are mutually exclusive with manual mode.

  /// Installs (or, with a default-constructed plan, clears) the fault plan
  /// and reseeds every per-channel fault stream from it.
  void set_fault_plan(const fault_plan& plan);
  const fault_plan& fault_config() const noexcept { return plan_; }
  bool faults_enabled() const noexcept { return faults_on_; }
  const fault_stats& faults() const noexcept { return fault_stats_; }

  /// Installs a reliable-delivery adapter (not owned; must outlive the
  /// run).  nullptr uninstalls.
  void set_link_adapter(link_adapter* a);
  link_adapter* adapter() const noexcept { return adapter_; }

  /// Seed for adapter jitter streams (sim::transport): the fault-plan seed,
  /// so a chaos execution replays bit for bit whichever driver the adapter
  /// runs over.
  std::uint64_t link_seed() const noexcept override { return plan_.seed; }

  // --- service mode (src/net/) -------------------------------------------
  //
  // A multi-process deployment hosts a subset of the graph's nodes on each
  // network instance.  Sends to non-local ids exit through the gateway;
  // datagrams arriving from peer processes re-enter via inject_remote.

  /// Installs (nullptr uninstalls) the egress gateway (not owned; must
  /// outlive the run).
  void set_remote_gateway(remote_gateway* g) noexcept { gateway_ = g; }
  remote_gateway* gateway() const noexcept { return gateway_; }

  /// Delivers a message that arrived from a peer process to local node
  /// `to`, as its own delivery activation (advances virtual time by one
  /// tick, wakes the node if needed, fires observers).  `from` need not be
  /// a local node.  Driver-level call: only valid between activations.
  void inject_remote(node_id to, node_id from, const message_ptr& m);

  // --- wire mode ----------------------------------------------------------
  //
  // With a codec installed, every application send whose dispatch_tag has a
  // registered encoder is replaced at the send choke point by a wire_msg
  // carrying the encoded frame; the pool then holds encoded bytes instead
  // of structs and the frame size is accounted below.  Encoding happens
  // before the fault plan and the link adapter see the message, so chaos
  // semantics and ARQ envelopes are unchanged — they transport frames.
  // Forwarded frames (routing hops resending the same message) are counted
  // again per hop: each hop is a wire transmission.  Messages with no
  // encoder (foreign test types) pass through as structs, uncounted.

  /// Installs (nullptr uninstalls) the codec (not owned; must outlive the
  /// run).  Must be called before any traffic; mutually exclusive with
  /// manual mode.
  void set_wire_codec(const wire_codec* c);
  bool wire_enabled() const noexcept { return codec_ != nullptr; }

  /// Per-inner-tag wire accounting (all zero with wire mode off).
  struct wire_slot {
    std::string_view name;     ///< inner type_name ("" = tag never sent)
    std::uint64_t frames = 0;  ///< frames offered to the transport
    std::uint64_t bytes = 0;   ///< frame bytes, header byte included
  };
  std::uint64_t wire_bytes_sent() const noexcept { return wire_bytes_; }
  std::uint64_t wire_frames() const noexcept { return wire_frames_; }
  const std::array<wire_slot, 128>& wire_by_tag() const noexcept {
    return wire_slots_;
  }

  /// Raw transport-level send, bypassing the installed adapter (adapters
  /// use this to put envelopes and acks on the wire; the fault plan
  /// applies).  With no adapter installed this is exactly what
  /// context::send does.
  void transport_send(node_id from, node_id to, message_ptr m) override;

  /// Delivers an application message to `to`'s process.  Only valid inside
  /// a delivery activation (adapters call it from transport_deliver after
  /// reassembling FIFO order); the activation's causal identity covers all
  /// messages released this way.
  void app_deliver(node_id to, node_id from, const message_ptr& m) override;

  /// Schedules adapter::on_timer(key) at now + delay (delay >= 1).  Timer
  /// events are causally "between activations", like quiescence hooks.
  void schedule_adapter_timer(sim_time delay, std::uint64_t key) override;

  // --- execution ---------------------------------------------------------

  /// Runs until the event queue drains and scheduler::on_quiescence
  /// declines to inject more work.  max_events guards against livelock.
  run_result run(std::uint64_t max_events = default_event_cap);

  /// Process events until the queue is empty once (no quiescence hook).
  /// Used by drivers that interleave their own actions with execution.
  run_result run_to_quiescence(std::uint64_t max_events = default_event_cap);

  // --- manual stepping (exhaustive interleaving exploration) --------------
  //
  // In manual mode nothing is scheduled: sends park in their FIFO channels
  // and wakes park in a pending map; an external driver enumerates the
  // currently ready steps and picks which fires next.  This exposes every
  // delivery/wake interleaving the asynchronous model admits (FIFO per
  // channel is still structural: only channel heads are offered).
  // See sim/explore.h for the exhaustive driver.

  struct manual_step {
    bool is_wake;
    node_id a;  // the woken node / channel source
    node_id b;  // channel destination (deliver only)
    bool operator<(const manual_step& o) const noexcept {
      return std::tie(is_wake, a, b) < std::tie(o.is_wake, o.a, o.b);
    }
    bool operator==(const manual_step& o) const noexcept {
      return is_wake == o.is_wake && a == o.a && b == o.b;
    }
  };

  /// Enables manual mode.  Must be called before any traffic or wakes.
  void set_manual_mode();

  /// Ready steps, deterministically ordered (pending wakes first, then
  /// channel heads by (from, to)).
  std::vector<manual_step> manual_options() const;

  /// Fires one ready step (must be an element of manual_options()).
  void take_step(const manual_step& s);

  sim_time now() const noexcept override { return now_; }
  stats& statistics() noexcept { return stats_; }
  const stats& statistics() const noexcept { return stats_; }

  /// Wall-clock timing of the event loops run so far (cumulative).
  const run_timing& timing() const noexcept { return timing_; }

  // --- observers ---------------------------------------------------------
  //
  // Any number of observers can be armed at once; events fan out in
  // registration order.  Observers are not owned and must outlive the run.

  void add_observer(observer* obs) { observers_.add(obs); }
  bool remove_observer(observer* obs) { return observers_.remove(obs); }

  /// Legacy single-observer interface: clears the list, then registers
  /// `obs` (nullptr just clears).
  void set_observer(observer* obs) {
    observers_.clear();
    if (obs != nullptr) observers_.add(obs);
  }

  // --- runtime health ----------------------------------------------------
  //
  // Probes are virtual-time periodic callbacks (telemetry samplers, stall
  // watchdogs); the flight recorder is a ring of the last K dispatched
  // events for postmortems.  Neither is owned; both must outlive the run.

  /// Registers a health probe; its first firing is at or after `first_at`.
  void add_health_probe(health_probe* p, sim_time first_at);
  /// Unregisters; returns false if the probe was not registered.
  bool remove_health_probe(health_probe* p);

  /// Installs (nullptr uninstalls) a flight recorder that receives one
  /// entry per dispatched event.
  void set_flight_recorder(flight_recorder* fr) noexcept { flight_ = fr; }
  flight_recorder* flight() const noexcept { return flight_; }

  /// Installs (nullptr uninstalls) an online cost profiler (sim/profiler.h):
  /// hot-path phases — queue pop, fault ruling, ARQ, per-dispatch-tag
  /// handlers, observer fan-out, health probes — get exclusive wall-clock
  /// attribution.  Disarmed cost is one pointer test per site.  Not owned;
  /// must outlive the run.
  void set_profiler(cost_profiler* p) noexcept { prof_ = p; }
  cost_profiler* profiler() const noexcept { return prof_; }

  /// Asks the running event loop to stop after the current event; the
  /// run_result comes back with stopped = true, completed = false.  Called
  /// by probes (watchdog abort-on-trip); a no-op outside run().
  void request_stop() noexcept { stop_requested_ = true; }

  /// Undelivered messages across all channels (held ones included).
  std::uint64_t in_flight() const noexcept { return in_flight_; }
  /// Scheduled events not yet dispatched.
  std::size_t queue_depth() const noexcept { return events_.size(); }
  /// Application-level messages handed to processes (with a reliable-link
  /// adapter installed this counts released app messages, not envelopes) —
  /// the watchdog's delivery-progress signal.
  std::uint64_t app_deliveries() const noexcept { return app_deliveries_; }

  // --- causal tracing ----------------------------------------------------
  //
  // Every activation (wake/delivery callback) gets a unique event id, and
  // every queued message remembers the activation that sent it, so an
  // observer can reconstruct the full causal genealogy of a run (the
  // telemetry tracer does; see telemetry/tracer.h).

  /// The causal identity of the activation currently running (observers
  /// query this from their callbacks).
  const trace_context& trace_ctx() const noexcept { return tctx_; }

  /// Id of the most recently *completed* activation (trace_context::none
  /// before the first).  Actions taken outside any activation — quiescence
  /// hooks, driver calls — are causally ordered after it.
  std::uint64_t last_event_id() const noexcept { return last_event_; }

  /// Total activations assigned so far.
  std::uint64_t events_assigned() const noexcept { return next_event_id_; }

  /// True iff no undelivered messages exist anywhere (including held ones).
  bool channels_empty() const noexcept { return in_flight_ == 0; }

  // --- sharded execution (sim/parallel_engine.h) -------------------------

  /// True while a parallel window phase is executing handlers (possibly on
  /// worker threads): sends, timer arms, and trace records are being
  /// deferred to per-shard logs for barrier replay.  Toggled only between
  /// phases on the coordinator, never concurrently with handler execution.
  bool deferred_phase() const noexcept { return deferred_; }

  /// Appends an opaque record to the calling worker's deferral sink; the
  /// parallel engine replays it (through its user_replay callback) at the
  /// barrier, in serial activation order.  Trace sinks whose bookkeeping
  /// must stay in serial order call this when deferred_phase() is true.
  /// Invalid outside a window phase.
  void defer_user_record(std::uint64_t a, std::uint64_t b, std::uint64_t c);

  /// Installs (nullptr clears) the calling thread's deferral sink.  The
  /// parallel engine sets one per worker for the duration of each phase.
  static void set_thread_deferral(deferral_sink* sink) noexcept;

  static constexpr std::uint64_t default_event_cap = 500'000'000;

 private:
  friend class context;
  friend class parallel_engine;

  static constexpr std::uint32_t npos = flat_u64_map::npos;

  /// A message in flight, with the causal record of how it got there.
  struct queued_msg {
    message_ptr m;
    /// Activation that sent it (trace_context::none for driver sends).
    std::uint64_t sent_in = trace_context::none;
    /// Activation whose quiescence released it (held messages) or preceded
    /// the out-of-activation send; none for ordinary in-activation sends.
    std::uint64_t released_in = trace_context::none;
    sim_time sent_at = 0;
  };

  struct channel {
    std::deque<queued_msg> queue;
    /// Tail messages with no delivery event yet (sender was blocked).
    std::size_t unscheduled = 0;
    node_id from = invalid_node;
    node_id to = invalid_node;
    std::uint32_t to_index = npos;
    /// Per-channel fault stream, seeded from (plan seed, from, to) so fault
    /// decisions are independent of channel creation order.
    rng fault_rng{0};
  };

  enum class event_kind : std::uint8_t { wake, deliver, timer };

  struct event {
    sim_time at;
    std::uint64_t seq;
    /// Wake events: the activation that requested the wake (none = root).
    /// Timer events: the adapter's opaque 64-bit timer key.
    std::uint64_t cause;
    /// Wake: target slot index.  Deliver: channel index.  Timer: unused.
    std::uint32_t target;
    event_kind kind;
  };

  struct event_after {
    bool operator()(const event& x, const event& y) const noexcept {
      if (x.at != y.at) return x.at > y.at;
      return x.seq > y.seq;
    }
  };

  struct node_slot {
    std::unique_ptr<process> proc;
    node_id id = invalid_node;
    bool awake = false;
    bool blocked = false;
    /// One-entry channel cache: slot index of the last send's destination
    /// and the channel that reached it.  Query/reply ping-pong and
    /// next-pointer routing chains resend to the same peer repeatedly, so
    /// this short-circuits the channel hash probe on the common send.
    std::uint32_t last_to = ~std::uint32_t{0};
    std::uint32_t last_ci = 0;
    /// Outgoing channel indices, kept sorted by destination *id* so the
    /// adversarial release loop walks channels in the same (from, to) order
    /// the std::map implementation did.
    std::vector<std::uint32_t> out;
  };

  /// Slot index for an id; npos if unregistered.  Fast path: the dense case
  /// (ids are exactly 0..n-1, as discovery_run builds them) needs no hash
  /// probe at all.
  std::uint32_t index_of(node_id id) const noexcept {
    if (id < slots_.size() && slots_[id].id == id) return id;
    return node_index_.find(id);
  }

  /// Channel index for (from, to) slot indices, creating the channel (and
  /// registering it in the sender's sorted out-list) on first use.
  std::uint32_t channel_of(std::uint32_t from, std::uint32_t to);

  /// Channel index, or npos if the channel was never used.
  std::uint32_t find_channel(std::uint32_t from, std::uint32_t to) const noexcept {
    if (from == npos || to == npos) return npos;
    return channel_index_.find(pack(from, to));
  }

  static std::uint64_t pack(std::uint32_t from, std::uint32_t to) noexcept {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  /// The one place scheduler::delay is consulted: enforces the ">= 1"
  /// contract (asserted in debug builds, clamped in release so simulated
  /// time stays strictly monotone even under a misbehaving scheduler).
  sim_time scheduled_delay(node_id from, node_id to, const message& m);

  void send_internal(node_id from, node_id to, message_ptr m);

  /// Wire mode: encodes `m` through the codec table (or recognizes an
  /// already-encoded forwarded frame) and accounts its bytes.  Returns the
  /// message to transport — the wire_msg, or `m` unchanged if its tag has
  /// no encoder.
  message_ptr wire_encode(message_ptr m);

  /// The one place a transmission goes on the wire: rolls the channel's
  /// fault plan (outage / drop / duplicate / extra reorder delay), enqueues
  /// the surviving copies, and schedules their delivery events.  `counted`
  /// says whether `q` is already included in in_flight_ (release path).
  void schedule_transmission(std::uint32_t ci, queued_msg q, bool counted);

  /// True iff the (from, to) link is inside one of its outage windows now.
  bool outage_active(const channel& ch) const noexcept;

  void ensure_awake(std::uint32_t idx, std::uint64_t cause,
                    std::uint64_t release);
  /// Fires every due probe and recomputes next_probe_ (the cached minimum
  /// the hot loop compares against).
  void fire_probes();
  void dispatch(const event& ev);
  void push_event(sim_time at, event_kind kind, std::uint32_t target,
                  std::uint64_t cause = trace_context::none);
  void finalize_id_bits();

  /// Opens/closes the trace context around one activation's callbacks.
  void begin_activation(std::uint64_t cause, std::uint64_t release,
                        sim_time sent_at);
  void end_activation();
  /// The causal anchor for actions taken right now: the running activation
  /// if inside one, else the last completed one (quiescence ordering).
  std::uint64_t current_anchor() const noexcept {
    return tctx_.active ? tctx_.event_id : last_event_;
  }

  scheduler* sched_;
  std::vector<node_slot> slots_;
  flat_u64_map node_index_;     ///< id -> slot index
  std::vector<channel> channels_;
  flat_u64_map channel_index_;  ///< pack(from, to) indices -> channel index
  calendar_queue<event, event_after> events_;
  std::uint64_t in_flight_ = 0;  ///< undelivered messages across all channels
  fault_plan plan_;
  fault_stats fault_stats_;
  bool faults_on_ = false;
  link_adapter* adapter_ = nullptr;
  remote_gateway* gateway_ = nullptr;
  const wire_codec* codec_ = nullptr;
  std::array<wire_slot, 128> wire_slots_{};
  std::uint64_t wire_bytes_ = 0;
  std::uint64_t wire_frames_ = 0;
  stats stats_;
  multi_observer observers_;
  run_timing timing_;
  /// Registered health probes with their next due times.  next_probe_
  /// caches the minimum so the event loop pays one compare per event; it is
  /// the sentinel no_probe when nothing is armed.
  static constexpr sim_time no_probe = ~sim_time{0};
  std::vector<std::pair<health_probe*, sim_time>> probes_;
  sim_time next_probe_ = no_probe;
  flight_recorder* flight_ = nullptr;
  cost_profiler* prof_ = nullptr;
  std::uint64_t app_deliveries_ = 0;
  bool stop_requested_ = false;
  /// Window phase flag (see deferred_phase()).  Plain bool: writes happen
  /// on the coordinator strictly before/after the phase's fork/join
  /// barriers, which order them against every worker's reads.
  bool deferred_ = false;
  sim_time now_ = 0;
  std::uint64_t seq_ = 0;
  trace_context tctx_;
  std::uint64_t next_event_id_ = 0;
  std::uint64_t last_event_ = trace_context::none;
  bool id_bits_fixed_ = false;
  bool manual_mode_ = false;
  /// Manual mode: woken-but-not-yet-fired nodes, each with the causal
  /// anchor of the wake request (the activation — or last completed
  /// activation — that asked for it).  Keyed by id: deterministic option
  /// order and the anchor survives until take_step fires the wake.
  std::map<node_id, std::uint64_t> pending_wakes_;
};

}  // namespace asyncrd::sim
