#include "sim/stats.h"

namespace asyncrd::sim {

void stats::record(const message& m) {
  const std::uint8_t tag = m.dispatch_tag();
  type_stats* ts = by_tag_[tag];
  if (ts == nullptr || tag == 0) {
    auto it = by_type_.find(m.type_name());
    if (it == by_type_.end())
      it = by_type_.emplace(std::string(m.type_name()), type_stats{}).first;
    ts = &it->second;
    if (tag != 0) by_tag_[tag] = ts;
  }
  const std::size_t b = m.bits(id_bits_);
  ts->count += 1;
  ts->bits += b;
  total_count_ += 1;
  total_bits_ += b;
}

std::uint64_t stats::messages_of(std::string_view type) const {
  const auto it = by_type_.find(type);
  return it == by_type_.end() ? 0 : it->second.count;
}

std::uint64_t stats::bits_of(std::string_view type) const {
  const auto it = by_type_.find(type);
  return it == by_type_.end() ? 0 : it->second.bits;
}

std::uint64_t stats::messages_of_any(
    std::initializer_list<std::string_view> types) const {
  std::uint64_t sum = 0;
  for (const auto t : types) sum += messages_of(t);
  return sum;
}

void stats::reset() {
  by_type_.clear();
  by_tag_.fill(nullptr);
  total_count_ = 0;
  total_bits_ = 0;
}

}  // namespace asyncrd::sim
