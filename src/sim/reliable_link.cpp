#include "sim/reliable_link.h"

#include <algorithm>
#include <cassert>

namespace asyncrd::sim {

namespace {
/// Stream salt separating retransmit jitter from the wire's fault streams.
constexpr std::uint64_t jitter_salt = 0xA3C5'9AC3'1F22'D73Bull;
}  // namespace

reliable_link_stats reliable_link_layer::stats() const noexcept {
  reliable_link_stats out = stats_;
  for (const receiver_state& r : receivers_) {
    out.acks_sent += r.acks_sent;
    out.dup_suppressed += r.dup_suppressed;
    out.buffered_ooo += r.buffered_ooo;
  }
  return out;
}

bool reliable_link_layer::all_acked() const noexcept {
  for (const sender_state& s : senders_)
    if (!s.unacked.empty()) return false;
  return true;
}

reliable_link_layer::sender_state& reliable_link_layer::sender_for(
    node_id from, node_id to) {
  const std::uint64_t key = pack(from, to);
  const std::uint32_t found = sender_index_.find(key);
  if (found != flat_u64_map::npos) return senders_[found];
  const auto index = static_cast<std::uint32_t>(senders_.size());
  senders_.emplace_back();
  senders_.back().from = from;
  senders_.back().to = to;
  senders_.back().rto = cfg_.rto_initial;
  senders_.back().jitter = rng(net_->link_seed() ^ jitter_salt ^ key);
  sender_index_.insert(key, index);
  return senders_[index];
}

reliable_link_layer::receiver_state& reliable_link_layer::receiver_for(
    node_id from, node_id to) {
  const std::uint64_t key = pack(from, to);
  const std::uint32_t found = receiver_index_.find(key);
  if (found != flat_u64_map::npos) return receivers_[found];
  const auto index = static_cast<std::uint32_t>(receivers_.size());
  receivers_.emplace_back();
  receiver_index_.insert(key, index);
  return receivers_[index];
}

void reliable_link_layer::arm_timer(std::uint32_t index) {
  sender_state& s = senders_[index];
  // Jittered deadline: rto + uniform[0, rto/2].  The spread keeps a capped
  // backoff schedule from resonating with a periodic outage window — if
  // rto_max were a multiple of outage_period, every retry on an unlucky
  // channel would land inside the blackout, forever.  (The config knob
  // turning it off exists to re-create exactly that livelock in watchdog
  // tests.)
  const sim_time delay =
      cfg_.retransmit_jitter ? s.rto + s.jitter.below(s.rto / 2 + 1) : s.rto;
  s.deadline = net_->now() + delay;
  net_->schedule_adapter_timer(delay, index);
}

void reliable_link_layer::app_send(node_id from, node_id to, message_ptr m) {
  sender_state& s = sender_for(from, to);
  const std::uint64_t seq = s.next_seq++;
  message_ptr env = make_message<rl_data_msg>(std::move(m), seq);
  const bool was_drained = s.unacked.empty();
  s.unacked.push_back(env);
  ++outstanding_;
  if (was_drained) ++backlogged_;
  ++stats_.data_sent;
  net_->transport_send(from, to, std::move(env));
  // transport_send may create channels and grow internal tables, but the
  // adapter's own vectors only grow in sender_for/receiver_for: s is alive.
  if (was_drained) {
    s.rto = cfg_.rto_initial;
    arm_timer(sender_index_.find(pack(from, to)));
  }
}

void reliable_link_layer::transport_deliver(node_id from, node_id to,
                                            const message_ptr& m) {
  switch (m->dispatch_tag()) {
    case rl_data_tag:
      handle_data(from, to, static_cast<const rl_data_msg&>(*m));
      return;
    case rl_ack_tag:
      handle_ack(from, to, static_cast<const rl_ack_msg&>(*m));
      return;
    default:
      assert(false && "reliable_link: raw message on a chaos wire");
      return;
  }
}

void reliable_link_layer::handle_data(node_id from, node_id to,
                                      const rl_data_msg& env) {
  receiver_state& r = receiver_for(from, to);
  if (env.seq < r.expected) {
    // Already released in order: a retransmission whose ack was lost, or a
    // wire duplicate.  Re-acking below is what unblocks the sender.
    ++r.dup_suppressed;
  } else if (env.seq == r.expected) {
    ++r.expected;
    net_->app_deliver(to, from, env.inner);
    // Drain whatever the gap was holding back, in seq order.
    auto it = r.buffer.begin();
    while (it != r.buffer.end() && it->first == r.expected) {
      ++r.expected;
      net_->app_deliver(to, from, it->second);
      it = r.buffer.erase(it);
    }
  } else {
    const auto [it, inserted] = r.buffer.emplace(env.seq, env.inner);
    (void)it;
    if (inserted)
      ++r.buffered_ooo;
    else
      ++r.dup_suppressed;
  }
  // Cumulative ack for every arrival — duplicates included, so a sender
  // whose previous acks were all dropped still learns its progress.
  ++r.acks_sent;
  net_->transport_send(to, from, make_message<rl_ack_msg>(r.expected));
}

void reliable_link_layer::handle_ack(node_id from, node_id to,
                                     const rl_ack_msg& ack) {
  // The ack arrived at `to` (the data sender) from `from` (the data
  // receiver): it covers the ordered channel (to, from).
  const std::uint32_t index = sender_index_.find(pack(to, from));
  if (index == flat_u64_map::npos) return;  // ack for nothing we sent
  sender_state& s = senders_[index];
  if (ack.ack <= s.base) return;  // stale cumulative ack
  // An ack above everything we ever sent cannot arise from our own data; it
  // is hostile or corrupt (reachable over a real socket, so a guard, not an
  // assert — never triggered by the simulator's own envelopes).
  if (ack.ack > s.base + s.unacked.size()) return;
  const std::uint64_t acked = ack.ack - s.base;
  s.unacked.erase(s.unacked.begin(), s.unacked.begin() +
                                         static_cast<std::ptrdiff_t>(acked));
  s.base = ack.ack;
  outstanding_ -= acked;
  if (s.unacked.empty()) --backlogged_;
  // Progress: back off no longer — reset the timeout and re-arm for what
  // remains.  The previously armed timer is orphaned by the deadline move;
  // with nothing left unacked it finds an empty queue and dies.
  s.rto = cfg_.rto_initial;
  if (!s.unacked.empty()) arm_timer(index);
}

void reliable_link_layer::prepare_channel(node_id from, node_id to) {
  // Receive state only: sender state stays lazily created by app_send,
  // which the engine always replays serially, preserving the serial
  // creation order (and with it each sender's jitter-stream identity).
  receiver_for(from, to);
}

void reliable_link_layer::on_timer(std::uint64_t key) {
  const auto index = static_cast<std::uint32_t>(key);
  assert(index < senders_.size());
  sender_state& s = senders_[index];
  if (s.unacked.empty()) return;        // fully acked: do not re-arm
  if (net_->now() != s.deadline) return;  // orphaned by a newer arm
  ++stats_.timer_fires;
  // Go-back-N: re-put every unacked envelope on the wire.  The receiver's
  // dedup makes the redundancy harmless; the fault plan rules on each copy
  // independently.
  stats_.retransmits += s.unacked.size();
  const node_id from = s.from;
  const node_id to = s.to;
  for (std::size_t i = 0; i < s.unacked.size(); ++i) {
    message_ptr env = s.unacked[i];
    net_->transport_send(from, to, std::move(env));
  }
  ++stats_.rto_backoffs;
  s.rto = std::min<sim_time>(s.rto * 2, cfg_.rto_max);
  stats_.max_rto = std::max<std::uint64_t>(stats_.max_rto, s.rto);
  arm_timer(index);
}

}  // namespace asyncrd::sim
